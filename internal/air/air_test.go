package air

import (
	"testing"

	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
)

func newAir() (*sim.Scheduler, *Air) {
	s := sim.NewScheduler()
	return s, New(s, radio.DefaultModel())
}

func cellCfg(name string, pci int) CellConfig {
	return CellConfig{
		Name: name, PCI: pci,
		Carrier:   phy.NewCarrier(100, 3_460_000_000),
		TDD:       phy.MustTDD("DDDSU"),
		Stack:     phy.StackSRSRAN,
		SSB:       phy.DefaultSSB(),
		PRACH:     phy.DefaultPRACH(),
		MaxLayers: 4,
	}
}

func elems(pos radio.Point, n int) []radio.Element {
	out := make([]radio.Element, n)
	for i := range out {
		out[i] = radio.DefaultRUElement(pos)
	}
	return out
}

func TestAbsSlotRoundTrip(t *testing.T) {
	for _, abs := range []int{0, 19, 20, 5119, 777} {
		frame, subframe, slot := phy.SlotCoords(abs)
		tm := oran.Timing{FrameID: frame, SubframeID: subframe, SlotID: slot}
		if got := AbsSlot(tm); got != abs%SlotsPerWrap {
			t.Fatalf("AbsSlot(%d) = %d", abs, got)
		}
	}
}

func TestAbsSlotNearHandlesWrap(t *testing.T) {
	// Time sits just past a wrap boundary; a timestamp from the end of the
	// previous wrap must resolve backwards, not half a wrap forward.
	now := phy.SlotStart(SlotsPerWrap + 3)
	frame, subframe, slot := phy.SlotCoords(SlotsPerWrap - 1)
	tm := oran.Timing{FrameID: frame, SubframeID: subframe, SlotID: slot}
	if got := AbsSlotNear(now, tm); got != SlotsPerWrap-1 {
		t.Fatalf("wrap-back resolution = %d, want %d", got, SlotsPerWrap-1)
	}
	// And a current-wrap timestamp resolves in place.
	frame, subframe, slot = phy.SlotCoords(SlotsPerWrap + 2)
	tm = oran.Timing{FrameID: frame, SubframeID: subframe, SlotID: slot}
	if got := AbsSlotNear(now, tm); got != SlotsPerWrap+2 {
		t.Fatalf("in-wrap resolution = %d", got)
	}
}

func TestSSBAttributionBySector(t *testing.T) {
	_, a := newAir()
	c1 := a.RegisterCell(cellCfg("c1", 1))
	c2 := a.RegisterCell(cellCfg("c2", 2)) // co-channel
	a.RegisterRU("ru1", elems(radio.RUAt(0, 10, 10), 4))

	ssbTiming := oran.Timing{Direction: oran.Downlink, FrameID: 0, SubframeID: 0, SlotID: 0, SymbolID: 2}
	lo := c1.Carrier.PRB0Hz()
	hi := lo + 20*phy.PRBBandwidthHz
	// Sector 1: only cell with PCI 1 hears it.
	a.ReportDL("ru1", 0, 1, ssbTiming, lo, hi, true)
	if len(a.ActiveRUs(c1)) != 1 {
		t.Fatal("cell 1 should have an active RU")
	}
	if len(a.ActiveRUs(c2)) != 0 {
		t.Fatal("co-channel cell 2 must not claim cell 1's SSB")
	}
	// Sector 0 (combined stream): attribution falls back to spectrum.
	a.ReportDL("ru1", 0, 0, ssbTiming, lo, hi, true)
	if len(a.ActiveRUs(c2)) != 1 {
		t.Fatal("sector-0 transmission should attribute by frequency")
	}
}

func TestDLDeliveredFraction(t *testing.T) {
	_, a := newAir()
	c := a.RegisterCell(cellCfg("c", 1))
	a.RegisterRU("ru1", elems(radio.RUAt(0, 10, 10), 4))
	u := NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)

	// Activate the RU for the cell via an SSB report.
	ssb := oran.Timing{Direction: oran.Downlink, SymbolID: 2}
	a.ReportDL("ru1", 0, 1, ssb, c.Carrier.PRB0Hz(), c.Carrier.PRB0Hz()+20*phy.PRBBandwidthHz, true)

	dataT := oran.Timing{Direction: oran.Downlink, FrameID: 1, SubframeID: 0, SlotID: 0}
	abs := AbsSlot(dataT)
	a.ExpectDL("c", abs, 4, 0.5)
	lo, hi := c.Carrier.PRB0Hz(), c.Carrier.PRBStartHz(c.Carrier.NumPRB)
	for sym := uint8(0); sym < 2; sym++ {
		tt := dataT
		tt.SymbolID = sym
		a.ReportDL("ru1", 0, 1, tt, lo, hi, true)
		// Duplicate reports of the same (sym, port) must not double count.
		a.ReportDL("ru1", 0, 1, tt, lo, hi, true)
	}
	if got := a.DLDeliveredFraction(c, abs, u); got != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	// A UE out of radio range gets nothing even though the RU received.
	far := NewUE(2, radio.UEAt(3, 10, 10))
	a.AddUE(far)
	if got := a.DLDeliveredFraction(c, abs, far); got != 0 {
		t.Fatalf("uncovered UE fraction = %v", got)
	}
}

func TestDLQualityNeedsActiveRUs(t *testing.T) {
	_, a := newAir()
	c := a.RegisterCell(cellCfg("c", 1))
	u := NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	if _, _, ok := a.DLQuality(c, u); ok {
		t.Fatal("quality without any radiating RU")
	}
}

func TestPRACHSampleByFrequency(t *testing.T) {
	_, a := newAir()
	c := a.RegisterCell(cellCfg("c", 1))
	a.RegisterRU("ru1", elems(radio.RUAt(0, 10, 10), 4))
	u := NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)

	abs := 39 // some occasion slot
	a.SendPRACH(u, c, abs)
	pLo := c.Carrier.PRBStartHz(c.PRACH.StartPRB)
	pHi := c.Carrier.PRBStartHz(c.PRACH.StartPRB + c.PRACH.NumPRB)

	// Sampling the wrong frequencies captures nothing (the A.1.2
	// mistranslation failure mode).
	if got := a.SamplePRACH("ru1", abs, pHi+1_000_000, pHi+5_000_000); len(got) != 0 {
		t.Fatalf("wrong-frequency sample captured %d UEs", len(got))
	}
	if got := a.CapturedPreambles("c", abs); len(got) != 0 {
		t.Fatal("nothing should be marked captured yet")
	}
	// The right span captures the preamble and records it for the DU.
	if got := a.SamplePRACH("ru1", abs, pLo, pHi); len(got) != 1 {
		t.Fatalf("captured %d UEs", len(got))
	}
	if got := a.TakeCaptured("c", abs); len(got) != 1 {
		t.Fatalf("TakeCaptured = %d", len(got))
	}
	if got := a.TakeCaptured("c", abs); len(got) != 0 {
		t.Fatal("TakeCaptured should consume")
	}
}

func TestAttachDetach(t *testing.T) {
	_, a := newAir()
	c1 := a.RegisterCell(cellCfg("c1", 1))
	c2 := a.RegisterCell(cellCfg("c2", 2))
	u := NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	a.Attach(u, c1)
	if !u.Attached() || len(c1.Attached()) != 1 {
		t.Fatal("attach")
	}
	a.Attach(u, c2)
	if len(c1.Attached()) != 0 || len(c2.Attached()) != 1 {
		t.Fatal("re-attach should move the UE")
	}
	a.Detach(u)
	if u.Attached() || len(c2.Attached()) != 0 {
		t.Fatal("detach")
	}
}

func TestMaintainUEAttachesAndFails(t *testing.T) {
	_, a := newAir()
	c := a.RegisterCell(cellCfg("c", 1))
	a.RegisterRU("ru1", elems(radio.RUAt(0, 10, 10), 4))
	u := NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)

	// No SSB yet: nothing to do.
	if got := a.MaintainUE(u, 0); got != "" {
		t.Fatalf("action = %q before any SSB", got)
	}
	ssb := oran.Timing{Direction: oran.Downlink, SymbolID: 2}
	a.ReportDL("ru1", 0, 1, ssb, c.Carrier.PRB0Hz(), c.Carrier.PRB0Hz()+20*phy.PRBBandwidthHz, true)
	if got := a.MaintainUE(u, 0); got != "prach" {
		t.Fatalf("action = %q, want prach", got)
	}
	// Attached UE whose serving SSB vanished detaches (radio link failure).
	a.Attach(u, c)
	u.Pos = radio.UEAt(4, 12, 10) // four floors up: unreachable
	if got := a.MaintainUE(u, 0); got != "detach" {
		t.Fatalf("action = %q, want detach", got)
	}
}

func TestNextPRACHOccasion(t *testing.T) {
	c := &Cell{CellConfig: cellCfg("c", 1)}
	first := NextPRACHOccasion(c, 0)
	if first != c.PRACH.Slot {
		t.Fatalf("first occasion = %d", first)
	}
	next := NextPRACHOccasion(c, first+1)
	if next != first+c.PRACH.PeriodFrames*phy.SlotsPerFrame {
		t.Fatalf("next occasion = %d", next)
	}
}

func TestULSignalSampling(t *testing.T) {
	_, a := newAir()
	c := a.RegisterCell(cellCfg("c", 1))
	a.RegisterRU("ru1", elems(radio.RUAt(0, 10, 10), 4))
	near := NewUE(1, radio.UEAt(0, 12, 10))
	far := NewUE(2, radio.UEAt(4, 12, 10)) // floors away: buried in noise
	a.AddUE(near)
	a.AddUE(far)
	a.RegisterUL(c, 100, near, 0, 50)
	a.RegisterUL(c, 100, far, 60, 50)

	lo, hi := c.Carrier.PRB0Hz(), c.Carrier.PRBStartHz(c.Carrier.NumPRB)
	sig := a.SampleUL("ru1", 100, lo, hi)
	if len(sig) != 1 {
		t.Fatalf("signals = %d, want 1 (far UE below noise)", len(sig))
	}
	if sig[0].Amplitude <= NoiseAmplitude {
		t.Fatalf("amplitude = %d", sig[0].Amplitude)
	}
	// Out-of-span sampling sees nothing.
	if got := a.SampleUL("ru1", 100, hi+1, hi+1000); len(got) != 0 {
		t.Fatal("out-of-span signals")
	}
}

func TestUEThroughputAccounting(t *testing.T) {
	u := NewUE(1, radio.UEAt(0, 1, 1))
	u.StartMeasurement(0)
	u.DeliveredDLBits = 1e6
	if got := u.ThroughputDLbps(sim.Time(1e9)); got != 1e6 {
		t.Fatalf("DL throughput = %v", got)
	}
	if got := u.ThroughputULbps(sim.Time(1e9)); got != 0 {
		t.Fatalf("UL throughput = %v", got)
	}
	if u.String() == "" {
		t.Fatal("String")
	}
}

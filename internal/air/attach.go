package air

import "ranbooster/internal/phy"

// Idle- and connected-mode mobility, abstracted to the decisions that
// matter for the paper's experiments: detection of SSB, random access,
// radio-link failure when the serving SSB fades, and A3-style handover
// when a neighbour becomes decisively stronger (the mechanism whose
// *absence* inside a DAS cell makes Fig. 11's O3 walk seamless).

// HandoverHysteresisDB is the margin a neighbour must exceed before a
// handover is attempted.
const HandoverHysteresisDB = 3

// NextPRACHOccasion returns the first PRACH occasion of the cell at or
// after absSlot.
func NextPRACHOccasion(c *Cell, absSlot int) int {
	period := c.PRACH.PeriodFrames * phy.SlotsPerFrame
	start := (phy.FrameOf(absSlot)/c.PRACH.PeriodFrames)*period + c.PRACH.Slot
	for start < absSlot {
		start += period
	}
	return start
}

// MaintainUE runs one round of mobility management for a UE and reports
// what happened ("", "prach", "detach", "handover").
func (a *Air) MaintainUE(u *UE, absSlot int) string {
	if u.Cell == nil {
		c, ok := a.AttachableCell(u)
		if !ok {
			return ""
		}
		a.SendPRACH(u, c, NextPRACHOccasion(c, absSlot))
		return "prach"
	}
	servingSNR, servingOK := a.ssbSNR(u.Cell, u)
	if !servingOK || servingSNR < u.SSBThresholdDB-HandoverHysteresisDB {
		// Radio link failure: the serving cell's SSB no longer reaches us
		// (the dMIMO-without-SSB-copy failure mode of §4.2).
		a.Detach(u)
		return "detach"
	}
	best, ok := a.AttachableCell(u)
	if ok && best != u.Cell {
		bestSNR, _ := a.ssbSNR(best, u)
		if bestSNR > servingSNR+HandoverHysteresisDB {
			a.Detach(u)
			a.SendPRACH(u, best, NextPRACHOccasion(best, absSlot))
			return "handover"
		}
	}
	return ""
}

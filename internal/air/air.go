// Package air is the over-the-air oracle of the testbed: it connects the
// fronthaul simulation to the radio model. RUs report what they actually
// transmit and sample; the oracle resolves which cells those emissions
// belong to (by spectrum overlap, so RU sharing attributes correctly),
// which UEs can hear them, SSB-based attachment, PRACH detection, and the
// per-slot delivery accounting DUs use to credit UE throughput.
//
// The oracle deliberately knows nothing about middleboxes: a middlebox
// influences outcomes only through the fronthaul packets it lets through,
// mutates or delays — exactly the paper's transparency property.
package air

import (
	"fmt"
	"math"

	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
)

// AbsSlot converts a timing header to an absolute slot index within the
// 256-frame wrap of the fronthaul timing space.
func AbsSlot(t oran.Timing) int {
	return (int(t.FrameID)*phy.SubframesPerFrame+int(t.SubframeID))*phy.SlotsPerSubframe + int(t.SlotID)
}

// SlotsPerWrap is the number of distinct absolute slots before FrameID wraps.
const SlotsPerWrap = 256 * phy.SlotsPerFrame

// AbsSlotNear resolves a (wrapped) timing header to the absolute slot
// index closest to the current time — how a synchronized node anchors
// fronthaul timestamps to its own clock.
func AbsSlotNear(now sim.Time, t oran.Timing) int {
	cur := phy.SlotAt(now)
	target := AbsSlot(t)
	base := (cur/SlotsPerWrap)*SlotsPerWrap + target
	best := base
	for _, c := range [3]int{base - SlotsPerWrap, base, base + SlotsPerWrap} {
		if c < 0 {
			continue
		}
		if absInt(c-cur) < absInt(best-cur) {
			best = c
		}
	}
	return best
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// CellConfig describes a cell's air-interface identity.
type CellConfig struct {
	Name      string
	PCI       int
	Carrier   phy.Carrier
	TDD       phy.TDD
	Stack     phy.StackProfile
	SSB       phy.SSBConfig
	PRACH     phy.PRACHConfig
	MaxLayers int
}

// Cell is the oracle's view of one cell.
type Cell struct {
	CellConfig
	// Activity is the cell's recent DL resource utilization in [0,1],
	// updated by its DU; it weights the interference this cell causes.
	Activity float64

	freqLo, freqHi int64
	slots          map[int]*slotState
	ssbTx          map[string]sim.Time // ruID -> last SSB transmission
	attached       map[*UE]bool
}

type slotState struct {
	expected int
	received map[slotMsgKey]bool
	perRU    map[string]int
}

type slotMsgKey struct {
	ru   string
	sym  uint8
	port uint8
}

// RUInfo is a registered radio unit: its antenna elements, as placed in
// the building.
type RUInfo struct {
	ID       string
	Elements []radio.Element
}

// Air is the oracle.
type Air struct {
	sched *sim.Scheduler
	Model radio.Model

	cells map[string]*Cell
	rus   map[string]*RUInfo
	ues   []*UE

	prach    map[prachKey][]*UE
	captured map[prachKey][]*UE
	ul       map[ulKey][]ulAlloc
}

type prachKey struct {
	cell    string
	absSlot int
}

// New creates an oracle over the given propagation model.
func New(sched *sim.Scheduler, model radio.Model) *Air {
	return &Air{
		sched:    sched,
		Model:    model,
		cells:    make(map[string]*Cell),
		rus:      make(map[string]*RUInfo),
		prach:    make(map[prachKey][]*UE),
		captured: make(map[prachKey][]*UE),
		ul:       make(map[ulKey][]ulAlloc),
	}
}

// RegisterCell adds a cell. Registering an existing name returns the
// existing cell: a redundant DU pair (the §8.1 resilience scenario)
// shares one air-interface identity.
func (a *Air) RegisterCell(cfg CellConfig) *Cell {
	if c := a.cells[cfg.Name]; c != nil {
		return c
	}
	c := &Cell{
		CellConfig: cfg,
		freqLo:     cfg.Carrier.PRB0Hz(),
		freqHi:     cfg.Carrier.PRB0Hz() + int64(cfg.Carrier.NumPRB)*phy.PRBBandwidthHz,
		slots:      make(map[int]*slotState),
		ssbTx:      make(map[string]sim.Time),
		attached:   make(map[*UE]bool),
	}
	a.cells[cfg.Name] = c
	return c
}

// Cell returns a registered cell.
func (a *Air) Cell(name string) *Cell { return a.cells[name] }

// RegisterRU adds a radio unit's antenna elements.
func (a *Air) RegisterRU(id string, elements []radio.Element) {
	a.rus[id] = &RUInfo{ID: id, Elements: elements}
}

// RU returns a registered RU.
func (a *Air) RU(id string) *RUInfo { return a.rus[id] }

// AddUE registers a UE.
func (a *Air) AddUE(u *UE) {
	u.air = a
	a.ues = append(a.ues, u)
}

// UEs returns the registered UEs.
func (a *Air) UEs() []*UE { return a.ues }

// ---- RU reporting ----

// ReportDL records that RU ruID radiated the frequency span [freqLo,
// freqHi) on its antenna port during the given symbol, with or without
// meaningful energy. The span is attributed to every cell whose spectrum
// it overlaps; a non-zero sector (the eAxC BandSector field, which DUs
// stamp with their PCI) additionally disambiguates co-channel cells the
// way a UE's PCI detection would. Sector 0 — combined streams rebuilt by
// an RU-sharing middlebox — falls back to pure spectrum attribution.
func (a *Air) ReportDL(ruID string, port uint8, sector uint8, t oran.Timing, freqLo, freqHi int64, energy bool) {
	abs := AbsSlot(t)
	for _, c := range a.cells {
		if freqHi <= c.freqLo || freqLo >= c.freqHi {
			continue
		}
		if sector != 0 && int(sector) != c.PCI&0xf {
			continue
		}
		st := c.slot(abs)
		k := slotMsgKey{ru: ruID, sym: t.SymbolID, port: port}
		if !st.received[k] {
			st.received[k] = true
			st.perRU[ruID]++
		}
		// SSB detection: energy in the cell's SSB window and PRB region.
		if energy && c.SSB.Occupies(int(t.FrameID), AbsSlot(t)%phy.SlotsPerFrame, int(t.SymbolID)) {
			ssbLo := c.Carrier.PRBStartHz(c.SSB.StartPRB)
			ssbHi := c.Carrier.PRBStartHz(c.SSB.StartPRB + phy.SSBPRBs)
			if freqLo < ssbHi && freqHi > ssbLo {
				c.ssbTx[ruID] = a.sched.Now()
			}
		}
	}
}

func (c *Cell) slot(abs int) *slotState {
	st := c.slots[abs]
	if st == nil {
		st = &slotState{received: make(map[slotMsgKey]bool), perRU: make(map[string]int)}
		c.slots[abs] = st
		// Bound memory: forget slots half a wrap away.
		delete(c.slots, (abs+SlotsPerWrap/2)%SlotsPerWrap)
	}
	return st
}

// ExpectDL lets the DU declare how many (symbol, port) U-plane messages a
// complete copy of this slot comprises, and refresh the cell's activity.
func (a *Air) ExpectDL(cell string, absSlot, expectedMsgs int, activity float64) {
	c := a.cells[cell]
	if c == nil {
		return
	}
	c.slot(absSlot).expected = expectedMsgs
	c.Activity = activity
}

// ---- propagation queries ----

// ssbFresh is how long an SSB transmission keeps an RU "serving": a few
// SSB periods, after which a UE declares radio link failure — the
// detection window of the §8.1 resilience scenario.
const ssbFresh = 5 * phy.FrameDuration

// ActiveRUs returns the RUs recently transmitting the cell's SSB — the
// cell's current radiating set.
func (a *Air) ActiveRUs(cell *Cell) []*RUInfo {
	now := a.sched.Now()
	var out []*RUInfo
	for id, at := range cell.ssbTx {
		if now.Sub(at) <= ssbFresh {
			out = append(out, a.rus[id])
		}
	}
	return out
}

// servingElements collects the antenna elements of the cell's active RUs.
func (a *Air) servingElements(cell *Cell) []radio.Element {
	var els []radio.Element
	for _, ru := range a.ActiveRUs(cell) {
		els = append(els, ru.Elements...)
	}
	return els
}

// ControlActivityFloor is the minimum transmission activity of a live
// cell: SSB, PDCCH and reference signals radiate even with no user
// traffic, so a co-channel neighbour never interferes at exactly zero.
const ControlActivityFloor = 0.05

// interferenceMW aggregates co-channel interference at a point from every
// other cell with overlapping spectrum, weighted by that cell's activity.
func (a *Air) interferenceMW(victim *Cell, at radio.Point) float64 {
	var sum float64
	for _, c := range a.cells {
		if c == victim || c.freqHi <= victim.freqLo || c.freqLo >= victim.freqHi {
			continue
		}
		els := a.servingElements(c)
		if len(els) == 0 {
			continue
		}
		act := c.Activity
		if act < ControlActivityFloor {
			act = ControlActivityFloor
		}
		sum += a.Model.InterferenceMW(els, at, act)
	}
	return sum
}

// DLQuality computes the downlink link adaptation inputs for a UE on a
// cell: the chosen rank and per-layer SINR, given the cell's current
// radiating RU set and co-channel interference.
func (a *Air) DLQuality(cell *Cell, u *UE) (rank int, layerSINRdB float64, ok bool) {
	els := a.servingElements(cell)
	if len(els) == 0 {
		return 0, 0, false
	}
	noise := radio.LinearMW(a.Model.NoiseDBm(float64(cell.Carrier.NumPRB) * phy.PRBBandwidthHz))
	interf := a.interferenceMW(cell, u.Pos)
	sinrs := a.Model.ElementSINRs(els, u.Pos, noise, interf)
	maxL := cell.MaxLayers
	if u.MaxLayers < maxL {
		maxL = u.MaxLayers
	}
	capDB := els[0].EVMCapDB
	rank, layerSINRdB = phy.AdaptRank(sinrs, maxL, capDB)
	return rank, layerSINRdB, true
}

// ULQuality computes the uplink per-layer SINR (rank 1: all testbed UEs
// transmit SISO uplink) for a UE on a cell.
func (a *Air) ULQuality(cell *Cell, u *UE) (layerSINRdB float64, ok bool) {
	rus := a.ActiveRUs(cell)
	if len(rus) == 0 {
		return 0, false
	}
	noise := radio.LinearMW(a.Model.NoiseDBm(float64(cell.Carrier.NumPRB) * phy.PRBBandwidthHz))
	var elements []float64
	for _, ru := range rus {
		for _, el := range ru.Elements {
			// Reciprocal path: UE transmits at its own power toward the
			// RU element.
			rx := radio.LinearMW(a.Model.RxPowerDBm(u.TxDBm, u.Pos, el.Pos))
			air := rx / noise
			capLin := radio.LinearMW(phy.SINRCapUL)
			elements = append(elements, 1/(1/air+1/capLin))
		}
	}
	return phy.LayerSINRdB(elements, 1, phy.SINRCapUL), true
}

// covers reports whether RU coverage of the UE is at least minimally
// usable (CQI >= 1) for the cell's carrier.
func (a *Air) covers(cell *Cell, ru *RUInfo, u *UE) bool {
	noise := radio.LinearMW(a.Model.NoiseDBm(float64(cell.Carrier.NumPRB) * phy.PRBBandwidthHz))
	sinrs := a.Model.ElementSINRs(ru.Elements, u.Pos, noise, 0)
	var sum float64
	for _, s := range sinrs {
		sum += s
	}
	return 10*math.Log10(sum) >= -6.7 // CQI 1 threshold
}

// DLDeliveredFraction reports what fraction of a slot's downlink reached
// UE u over the air: the sum over RUs covering u of their share of the
// expected (symbol, port) messages, clamped to 1. It is the hook through
// which lost, late or mis-addressed fronthaul packets become lost bits.
func (a *Air) DLDeliveredFraction(cell *Cell, absSlot int, u *UE) float64 {
	st := cell.slots[absSlot]
	if st == nil || st.expected == 0 {
		return 0
	}
	var frac float64
	for ruID, n := range st.perRU {
		ru := a.rus[ruID]
		if ru == nil || !a.covers(cell, ru, u) {
			continue
		}
		frac += float64(n) / float64(st.expected)
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// ---- attachment and PRACH ----

// AttachableCell returns the best cell whose SSB the UE currently
// receives (highest SSB SNR), if any.
func (a *Air) AttachableCell(u *UE) (*Cell, bool) {
	var best *Cell
	bestSNR := math.Inf(-1)
	for _, c := range a.cells {
		if u.AllowedCell != "" && c.Name != u.AllowedCell {
			continue
		}
		snr, ok := a.ssbSNR(c, u)
		if ok && snr >= u.SSBThresholdDB && snr > bestSNR {
			best, bestSNR = c, snr
		}
	}
	return best, best != nil
}

// ssbSNR computes the strongest SSB SNR of the cell at the UE over the
// SSB bandwidth, across the RUs currently transmitting the SSB.
func (a *Air) ssbSNR(c *Cell, u *UE) (float64, bool) {
	rus := a.ActiveRUs(c)
	if len(rus) == 0 {
		return 0, false
	}
	noise := a.Model.NoiseDBm(float64(phy.SSBPRBs) * phy.PRBBandwidthHz)
	best := math.Inf(-1)
	for _, ru := range rus {
		for _, el := range ru.Elements {
			snr := a.Model.RxPowerDBm(el.TxDBm, el.Pos, u.Pos) - noise
			if snr > best {
				best = snr
			}
		}
	}
	return best, true
}

// SendPRACH records a UE preamble transmission for a cell's PRACH
// occasion in absSlot. The DU detects it only if an RU samples the right
// physical frequencies (SamplePRACH) and forwards the energy upstream.
func (a *Air) SendPRACH(u *UE, cell *Cell, absSlot int) {
	k := prachKey{cell: cell.Name, absSlot: absSlot % SlotsPerWrap}
	a.prach[k] = append(a.prach[k], u)
}

// SamplePRACH returns the UEs whose preamble an RU captures when sampling
// [freqLo, freqHi) during absSlot: the preamble must overlap the sampled
// span in frequency and reach the RU with usable power. Captured UEs are
// recorded so the DU can resolve preamble energy back to devices once the
// fronthaul delivers it (TakeCaptured).
func (a *Air) SamplePRACH(ruID string, absSlot int, freqLo, freqHi int64) []*UE {
	ru := a.rus[ruID]
	if ru == nil {
		return nil
	}
	var out []*UE
	for k, ues := range a.prach {
		if k.absSlot != absSlot%SlotsPerWrap {
			continue
		}
		c := a.cells[k.cell]
		if c == nil {
			continue
		}
		pLo := c.Carrier.PRBStartHz(c.PRACH.StartPRB)
		pHi := c.Carrier.PRBStartHz(c.PRACH.StartPRB + c.PRACH.NumPRB)
		if pHi <= freqLo || pLo >= freqHi {
			continue
		}
		var captured []*UE
		for _, u := range ues {
			noise := radio.LinearMW(a.Model.NoiseDBm(float64(c.PRACH.NumPRB) * phy.PRBBandwidthHz))
			rx := radio.LinearMW(a.Model.RxPowerDBm(u.TxDBm, u.Pos, ru.Elements[0].Pos))
			if 10*math.Log10(rx/noise) >= -6 { // preamble correlation gain
				captured = append(captured, u)
			}
		}
		if len(captured) > 0 {
			a.MarkCaptured(k.cell, absSlot, captured)
			out = append(out, captured...)
		}
	}
	return out
}

// ClearPRACH discards preambles for an occasion once processed.
func (a *Air) ClearPRACH(cell string, absSlot int) {
	delete(a.prach, prachKey{cell: cell, absSlot: absSlot % SlotsPerWrap})
}

// Attach completes a UE's attachment to a cell (the abstracted RRC
// exchange after preamble detection).
func (a *Air) Attach(u *UE, cell *Cell) {
	if u.Cell != nil {
		delete(u.Cell.attached, u)
	}
	u.Cell = cell
	cell.attached[u] = true
}

// Detach drops a UE from its cell.
func (a *Air) Detach(u *UE) {
	if u.Cell != nil {
		delete(u.Cell.attached, u)
		u.Cell = nil
	}
}

// Attached returns the UEs attached to the cell.
func (c *Cell) Attached() []*UE {
	out := make([]*UE, 0, len(c.attached))
	for u := range c.attached {
		out = append(out, u)
	}
	return out
}

// String describes the cell.
func (c *Cell) String() string {
	return fmt.Sprintf("cell %s (PCI %d, %s)", c.Name, c.PCI, c.Carrier)
}

package air

import (
	"fmt"

	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
)

// UE is a user device: a position, radio capabilities, an attachment
// state, and iperf-like traffic endpoints. The DU serves its queues; the
// oracle moves its radio state.
type UE struct {
	ID        int
	Name      string
	Pos       radio.Point
	MaxLayers int // downlink MIMO capability (testbed devices: 4)
	TxDBm     float64
	// SSBThresholdDB is the minimum SSB SNR the device needs to detect a
	// cell.
	SSBThresholdDB float64

	// Cell is the current serving cell (nil when detached).
	Cell *Cell
	// AllowedCell restricts attachment to one cell name ("force the
	// association ... based on the physical cell id", §6.2.3). Empty
	// allows any.
	AllowedCell string

	// Offered traffic rates in bits/second (iperf UDP style: the traffic
	// exists whether or not the network can carry it).
	OfferedDLbps float64
	OfferedULbps float64

	// Delivered bit counters, credited by the DU.
	DeliveredDLBits float64
	DeliveredULBits float64

	// measureStart marks the beginning of the current measurement window.
	measureStart sim.Time

	air *Air
}

// NewUE creates a UE with testbed-typical capabilities.
func NewUE(id int, pos radio.Point) *UE {
	return &UE{
		ID:             id,
		Name:           fmt.Sprintf("ue%d", id),
		Pos:            pos,
		MaxLayers:      4,
		TxDBm:          23,
		SSBThresholdDB: 0,
	}
}

// Attached reports whether the UE is on a cell.
func (u *UE) Attached() bool { return u.Cell != nil }

// StartMeasurement zeroes the delivered counters.
func (u *UE) StartMeasurement(now sim.Time) {
	u.DeliveredDLBits = 0
	u.DeliveredULBits = 0
	u.measureStart = now
}

// ThroughputDLbps returns the measured downlink goodput since the last
// StartMeasurement.
func (u *UE) ThroughputDLbps(now sim.Time) float64 {
	d := now.Sub(u.measureStart)
	if d <= 0 {
		return 0
	}
	return u.DeliveredDLBits / d.Seconds()
}

// ThroughputULbps returns the measured uplink goodput.
func (u *UE) ThroughputULbps(now sim.Time) float64 {
	d := now.Sub(u.measureStart)
	if d <= 0 {
		return 0
	}
	return u.DeliveredULBits / d.Seconds()
}

// String identifies the UE.
func (u *UE) String() string {
	cell := "detached"
	if u.Cell != nil {
		cell = u.Cell.Name
	}
	return fmt.Sprintf("%s@(%.1f,%.1f,f%d) on %s", u.Name, u.Pos.X, u.Pos.Y, radio.FloorOf(u.Pos), cell)
}

package air

import (
	"math"

	"ranbooster/internal/phy"
)

// Uplink allocation registry: the DU registers which UE transmits on
// which PRBs of its carrier, and RUs ask what signal their antennas would
// capture over a frequency span — the link between scheduling decisions
// and the IQ payloads the RU synthesizes.

type ulAlloc struct {
	ue             *UE
	freqLo, freqHi int64
}

type ulKey struct {
	absSlot int
}

// RegisterUL records that UE u transmits on PRBs [startPRB, startPRB+n)
// of cell's carrier during absSlot.
func (a *Air) RegisterUL(cell *Cell, absSlot int, u *UE, startPRB, n int) {
	k := ulKey{absSlot: absSlot % SlotsPerWrap}
	a.ul[k] = append(a.ul[k], ulAlloc{
		ue:     u,
		freqLo: cell.Carrier.PRBStartHz(startPRB),
		freqHi: cell.Carrier.PRBStartHz(startPRB + n),
	})
	// Forget the slot half a wrap away.
	delete(a.ul, ulKey{absSlot: (absSlot + SlotsPerWrap/2) % SlotsPerWrap})
}

// ULSignal describes one captured uplink transmission within a sampled span.
type ULSignal struct {
	FreqLo, FreqHi int64
	// Amplitude is the fixed-point sample amplitude the RU should
	// synthesize for this transmission.
	Amplitude int16
}

// SampleUL returns the uplink transmissions an RU element set captures
// over [freqLo, freqHi) during absSlot. Transmissions below the noise
// floor at this RU are omitted — their PRBs stay noise.
func (a *Air) SampleUL(ruID string, absSlot int, freqLo, freqHi int64) []ULSignal {
	ru := a.rus[ruID]
	if ru == nil {
		return nil
	}
	var out []ULSignal
	for _, al := range a.ul[ulKey{absSlot: absSlot % SlotsPerWrap}] {
		lo, hi := al.freqLo, al.freqHi
		if hi <= freqLo || lo >= freqHi {
			continue
		}
		if lo < freqLo {
			lo = freqLo
		}
		if hi > freqHi {
			hi = freqHi
		}
		amp := a.ulAmplitude(ru, al.ue)
		if amp == 0 {
			continue
		}
		out = append(out, ULSignal{FreqLo: lo, FreqHi: hi, Amplitude: amp})
	}
	return out
}

// NoiseAmplitude is the fixed-point amplitude of thermal noise in
// synthesized uplink PRBs. With 9-bit BFP it compresses to exponent <= 2,
// which is exactly why Algorithm 1's uplink threshold is 2.
const NoiseAmplitude = 300

// ulAmplitude maps the UE→RU link budget to a synthesis amplitude.
func (a *Air) ulAmplitude(ru *RUInfo, u *UE) int16 {
	rx := a.Model.RxPowerDBm(u.TxDBm, u.Pos, ru.Elements[0].Pos)
	noise := a.Model.NoiseDBm(phy.PRBBandwidthHz)
	snr := rx - noise
	if snr < 0 {
		return 0 // buried in noise: synthesize nothing
	}
	// Amplitude grows with sqrt of power; clamp into fixed-point range,
	// always clearly above the noise amplitude.
	amp := float64(NoiseAmplitude) * math.Pow(10, snr/20)
	if amp > 28000 {
		amp = 28000
	}
	if amp < 2*NoiseAmplitude {
		amp = 2 * NoiseAmplitude
	}
	return int16(amp)
}

// CapturedPreambles exposes (without clearing) the UEs whose PRACH an RU
// captured for a cell's occasion; the DU consumes them with TakeCaptured
// after it sees preamble energy arrive on the fronthaul.
func (a *Air) CapturedPreambles(cell string, absSlot int) []*UE {
	return a.captured[prachKey{cell: cell, absSlot: absSlot % SlotsPerWrap}]
}

// MarkCaptured records RU-side preamble capture (called by SamplePRACH
// consumers, i.e. RUs, when they synthesize preamble energy).
func (a *Air) MarkCaptured(cell string, absSlot int, ues []*UE) {
	k := prachKey{cell: cell, absSlot: absSlot % SlotsPerWrap}
	a.captured[k] = append(a.captured[k], ues...)
}

// TakeCaptured consumes the captured preamble list for an occasion.
func (a *Air) TakeCaptured(cell string, absSlot int) []*UE {
	k := prachKey{cell: cell, absSlot: absSlot % SlotsPerWrap}
	ues := a.captured[k]
	delete(a.captured, k)
	return ues
}

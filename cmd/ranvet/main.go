// Command ranvet is the multichecker driver for the repo's datapath
// invariant analyzers (internal/analysis): the v1 invariants
// (hotpathalloc, atomicfield, shardsafe, simclock, wirebounds) plus the
// v2 whole-program checkers (detflow, statemach, spscsingle, metricreg,
// staleallow). It loads the module packages matching the argument
// patterns (default ./...), runs the whole suite, and prints
// go-vet-style diagnostics; the exit status is 1 when any unsuppressed
// finding remains.
//
// Usage:
//
//	go run ./cmd/ranvet [-list] [-json] [-github] [packages]
//
// -json emits the findings as a JSON array (one object per diagnostic:
// analyzer, file, line, column, message) for toolchain consumers.
// -github emits GitHub Actions workflow commands (::error
// file=...,line=...,col=...) so CI findings surface as inline PR
// annotations. The two are exclusive; plain go-vet lines are the
// default.
//
// Suppressions are in-source: //ranvet:allow <analyzer> <reason> on or
// above the flagged line, //ranvet:allowfile <analyzer> <reason> for a
// whole file. A directive without a reason is itself an error, and a
// directive whose analyzer no longer fires there is a staleallow
// finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ranbooster/internal/analysis"
)

// jsonDiagnostic is the stable wire shape of one finding. Field names
// are part of the CI contract (.github/workflows/ci.yml parses them);
// extend, don't rename.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of go-vet lines")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ranvet [-list] [-json] [-github] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *github {
		fmt.Fprintln(os.Stderr, "ranvet: -json and -github are exclusive")
		os.Exit(2)
	}

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s (alias %-9s %s\n", a.Name, a.Alias+")", a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunAnalyzers(prog, suite)
	switch {
	case *jsonOut:
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relPath(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case *github:
		for _, d := range diags {
			// Workflow-command values must escape %, \r and \n.
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(
				fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, msg)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ranvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath rewrites an absolute finding path relative to the module root
// so JSON/annotation output matches the paths GitHub and editors expect.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ranvet:", err)
	os.Exit(2)
}

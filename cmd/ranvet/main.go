// Command ranvet is the multichecker driver for the repo's datapath
// invariant analyzers (internal/analysis): hotpathalloc, atomicfield,
// shardsafe, simclock and wirebounds. It loads the module packages
// matching the argument patterns (default ./...), runs the whole suite,
// and prints go-vet-style diagnostics; the exit status is 1 when any
// unsuppressed finding remains.
//
// Usage:
//
//	go run ./cmd/ranvet [-list] [packages]
//
// Suppressions are in-source: //ranvet:allow <analyzer> <reason> on or
// above the flagged line, //ranvet:allowfile <analyzer> <reason> for a
// whole file. A directive without a reason is itself an error.
package main

import (
	"flag"
	"fmt"
	"os"

	"ranbooster/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ranvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s (alias %-9s %s\n", a.Name, a.Alias+")", a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunAnalyzers(prog, suite)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ranvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ranvet:", err)
	os.Exit(2)
}

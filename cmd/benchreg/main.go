// Command benchreg records the engine benchmark matrix to JSON snapshots
// so successive changes can be compared number against number. It runs
// the exact workloads of BenchmarkEngineParallel, BenchmarkEngineTraced
// and BenchmarkEngineBurst — via testing.Benchmark, the same harness
// `go test -bench` uses — at 1, 2 and 4 cores (traced and untraced on
// the per-frame axis, batch sizes 16/32/64 on the burst axis), plus the
// per-width BFP codec microbenchmarks, into BENCH_6.json; and the
// metro-scale axis — streams × shards × chain-depth scenarios with
// telemetry latency percentiles and loss, plus the skewed-load
// hash-vs-worksteal comparison — into BENCH_8.json.
//
// Usage:
//
//	benchreg                  # writes BENCH_6.json and BENCH_8.json
//	benchreg -o bench.json -scale-o scale.json
//	benchreg -scale-only      # only the metro-scale axis / BENCH_8.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ranbooster/internal/benchreg"
)

// snapshot is the BENCH_*.json document.
type snapshot struct {
	Timestamp  string            `json:"timestamp"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []benchreg.Result `json:"results"`
	// TracingOverhead is (traced − untraced) / untraced ns/op at each core
	// count; the CI regression gate holds the 4-core value under 5%.
	TracingOverhead map[string]float64 `json:"tracing_overhead"`
	// Codec holds the per-width BFP compress/decompress and exponent-scan
	// microbenchmarks over a full 273-PRB carrier.
	Codec []benchreg.CodecResult `json:"codec"`
}

// scaleSnapshot is the BENCH_8.json document: the metro-scale axis.
type scaleSnapshot struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Metro holds the streams × shards × chain-depth scenario points:
	// virtual latency percentiles and loss from the engines' telemetry.
	Metro []benchreg.ScaleResult `json:"metro"`
	// Skew holds the skewed-load wall-clock comparison of the static
	// eAxC→shard hash against the work-stealing admission pool.
	Skew []benchreg.Result `json:"skew"`
}

// metroSlots sizes each scenario point; ~200k frames at the largest point.
const metroSlots = 200

func runScale(out string) error {
	snap := scaleSnapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	// One-at-a-time sweeps around the center point (256 streams, 4
	// shards, chain 2), plus the 1024-stream depth-3 acceptance point.
	points := [][3]int{
		{64, 4, 2}, {256, 4, 2}, {1024, 4, 2},
		{256, 1, 2}, {256, 2, 2},
		{256, 4, 1}, {256, 4, 3},
		{1024, 4, 3},
	}
	for _, p := range points {
		r, err := benchreg.MetroScale(p[0], p[1], p[2], metroSlots)
		if err != nil {
			return err
		}
		fmt.Printf("%-44s %8d frames  p50 %8.0f ns  p99 %8.0f ns  loss %.4f  (%.0f ms wall)\n",
			r.Name, r.Frames, r.P50Ns, r.P99Ns, r.LossRate, r.WallMs)
		snap.Metro = append(snap.Metro, r)
	}
	for _, ws := range []bool{false, true} {
		for _, cores := range []int{1, 4} {
			r := benchreg.MeasureSkew(cores, ws)
			fmt.Printf("%-44s %12.0f ns/op %12.0f frames/sec %6d allocs/op\n",
				r.Name, r.NsPerOp, r.FramesPerSec, r.AllocsPerOp)
			snap.Skew = append(snap.Skew, r)
		}
	}
	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_6.json", "engine-matrix output file")
	scaleOut := flag.String("scale-o", "BENCH_8.json", "metro-scale output file")
	scaleOnly := flag.Bool("scale-only", false, "record only the metro-scale axis")
	flag.Parse()

	if *scaleOnly {
		if err := runScale(*scaleOut); err != nil {
			exit(err)
		}
		return
	}

	snap := snapshot{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		TracingOverhead: make(map[string]float64),
	}
	plain := make(map[int]benchreg.Result)
	for _, traced := range []bool{false, true} {
		for _, cores := range []int{1, 2, 4} {
			r := benchreg.Measure(cores, traced)
			fmt.Printf("%-36s %12.0f ns/op %12.0f frames/sec %6d allocs/op\n",
				r.Name, r.NsPerOp, r.FramesPerSec, r.AllocsPerOp)
			snap.Results = append(snap.Results, r)
			if !traced {
				plain[cores] = r
			} else if base, ok := plain[cores]; ok && base.NsPerOp > 0 {
				key := fmt.Sprintf("cores=%d", cores)
				snap.TracingOverhead[key] = (r.NsPerOp - base.NsPerOp) / base.NsPerOp
			}
		}
	}
	for _, cores := range []int{1, 2, 4} {
		key := fmt.Sprintf("cores=%d", cores)
		fmt.Printf("tracing overhead %-10s %+.2f%%\n", key, snap.TracingOverhead[key]*100)
	}

	// The burst-size × core-count axis (BurstApp + kernel-retire datapath).
	for _, batch := range []int{16, 32, 64} {
		for _, cores := range []int{1, 2, 4} {
			r := benchreg.MeasureBurst(cores, batch)
			fmt.Printf("%-36s %12.0f ns/op %12.0f frames/sec %6d allocs/op\n",
				r.Name, r.NsPerOp, r.FramesPerSec, r.AllocsPerOp)
			snap.Results = append(snap.Results, r)
		}
	}

	codec, err := benchreg.MeasureCodecs()
	if err != nil {
		exit(err)
	}
	snap.Codec = codec
	for _, c := range codec {
		fmt.Printf("%-36s %12.1f ns/op %10.1f MB/s %6d allocs/op\n",
			c.Name, c.NsPerOp, c.MBPerSec, c.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		exit(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		exit(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if err := runScale(*scaleOut); err != nil {
		exit(err)
	}
}

func exit(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command benchreg records the engine benchmark matrix to a JSON snapshot
// (BENCH_6.json by default) so successive changes can be compared number
// against number. It runs the exact workloads of BenchmarkEngineParallel,
// BenchmarkEngineTraced and BenchmarkEngineBurst — via testing.Benchmark,
// the same harness `go test -bench` uses — at 1, 2 and 4 cores (traced
// and untraced on the per-frame axis, batch sizes 16/32/64 on the burst
// axis), plus the per-width BFP codec microbenchmarks.
//
// Usage:
//
//	benchreg                  # writes BENCH_6.json in the current directory
//	benchreg -o bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ranbooster/internal/benchreg"
)

// snapshot is the BENCH_*.json document.
type snapshot struct {
	Timestamp  string            `json:"timestamp"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []benchreg.Result `json:"results"`
	// TracingOverhead is (traced − untraced) / untraced ns/op at each core
	// count; the CI regression gate holds the 4-core value under 5%.
	TracingOverhead map[string]float64 `json:"tracing_overhead"`
	// Codec holds the per-width BFP compress/decompress and exponent-scan
	// microbenchmarks over a full 273-PRB carrier.
	Codec []benchreg.CodecResult `json:"codec"`
}

func main() {
	out := flag.String("o", "BENCH_6.json", "output file")
	flag.Parse()

	snap := snapshot{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		TracingOverhead: make(map[string]float64),
	}
	plain := make(map[int]benchreg.Result)
	for _, traced := range []bool{false, true} {
		for _, cores := range []int{1, 2, 4} {
			r := benchreg.Measure(cores, traced)
			fmt.Printf("%-36s %12.0f ns/op %12.0f frames/sec %6d allocs/op\n",
				r.Name, r.NsPerOp, r.FramesPerSec, r.AllocsPerOp)
			snap.Results = append(snap.Results, r)
			if !traced {
				plain[cores] = r
			} else if base, ok := plain[cores]; ok && base.NsPerOp > 0 {
				key := fmt.Sprintf("cores=%d", cores)
				snap.TracingOverhead[key] = (r.NsPerOp - base.NsPerOp) / base.NsPerOp
			}
		}
	}
	for _, cores := range []int{1, 2, 4} {
		key := fmt.Sprintf("cores=%d", cores)
		fmt.Printf("tracing overhead %-10s %+.2f%%\n", key, snap.TracingOverhead[key]*100)
	}

	// The burst-size × core-count axis (BurstApp + kernel-retire datapath).
	for _, batch := range []int{16, 32, 64} {
		for _, cores := range []int{1, 2, 4} {
			r := benchreg.MeasureBurst(cores, batch)
			fmt.Printf("%-36s %12.0f ns/op %12.0f frames/sec %6d allocs/op\n",
				r.Name, r.NsPerOp, r.FramesPerSec, r.AllocsPerOp)
			snap.Results = append(snap.Results, r)
		}
	}

	codec, err := benchreg.MeasureCodecs()
	if err != nil {
		exit(err)
	}
	snap.Codec = codec
	for _, c := range codec {
		fmt.Printf("%-36s %12.1f ns/op %10.1f MB/s %6d allocs/op\n",
			c.Name, c.NsPerOp, c.MBPerSec, c.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		exit(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		exit(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func exit(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command fhdissect decodes fronthaul capture files the way the
// Wireshark view of the paper's Fig. 2 does: Ethernet + eCPRI + O-RAN
// CUS headers, sections, BFP compression parameters and IQ samples.
//
// Usage:
//
//	fhdissect -sample fronthaul.pcap     # capture 20 ms of a simulated cell
//	fhdissect fronthaul.pcap             # dissect a capture
//	fhdissect -n 5 -prbs 273 capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ranbooster/internal/fh"
	"ranbooster/internal/pcap"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/testbed"
)

func main() {
	sample := flag.String("sample", "", "write a sample capture of a simulated 100 MHz cell to this path, then exit")
	n := flag.Int("n", 10, "number of packets to dissect")
	prbs := flag.Int("prbs", 273, "carrier PRB count for resolving \"all PRBs\" sections")
	flag.Parse()

	if *sample != "" {
		if err := writeSample(*sample); err != nil {
			fmt.Fprintln(os.Stderr, "sample:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *sample)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fhdissect [-n N] [-prbs P] <capture.pcap> | fhdissect -sample <out.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	r := pcap.NewReader(f)
	for i := 0; i < *n; i++ {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("-- packet %d @ %v --\n", i+1, p.TS)
		fmt.Print(fh.Dissect(p.Frame, *prbs))
		fmt.Println()
	}
}

// writeSample runs a short simulated cell with one loaded UE and captures
// every fronthaul frame crossing the switch.
func writeSample(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := pcap.NewWriter(f)

	tb := testbed.New(7)
	var werr error
	tb.Switch.SetTap(func(frame []byte) {
		if werr == nil {
			werr = w.WritePacket(time.Duration(tb.Sched.Now()), frame)
		}
	})
	cell := testbed.CellConfig("cap", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
	tb.DirectCell("cap", cell, testbed.RUPosition(0, 0), 4, false)
	ue := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
	ue.OfferedDLbps = 400e6
	ue.OfferedULbps = 40e6
	tb.Settle()
	tb.Run(20 * time.Millisecond)
	return werr
}

// Command ranboosterd runs a RANBooster middlebox deployment on the
// simulated enterprise testbed and reports live KPIs — the operational
// face of the framework: pick an application, a datapath, a duration.
//
// Usage:
//
//	ranboosterd -app das -mode dpdk -duration 500ms
//	ranboosterd -app dmimo -mode xdp
//	ranboosterd -app rushare
//	ranboosterd -app prbmon -load 400
//	ranboosterd -app prbmon -loss 0.05   # 5% loss on every fabric link
//	ranboosterd -app das -metrics :9090 -pprof      # Prometheus /metrics + pprof
//	ranboosterd -app das -trace -tracedump -        # slot replay of frame spans
//	ranboosterd -app das -trace -pcap run.pcap      # spans correlate with capture
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/core"
	"ranbooster/internal/fault"
	"ranbooster/internal/pcap"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func main() {
	app := flag.String("app", "das", "middlebox application: das | dmimo | rushare | prbmon")
	modeS := flag.String("mode", "dpdk", "datapath: dpdk | xdp")
	dur := flag.Duration("duration", 500*time.Millisecond, "simulated run time after settling")
	load := flag.Float64("load", 500, "offered downlink load per UE, Mbps")
	loss := flag.Float64("loss", 0, "i.i.d. frame loss probability injected on every fabric link")
	metrics := flag.String("metrics", "", "serve a Prometheus /metrics endpoint on this address (e.g. :9090) for the duration of the run")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics address")
	trace := flag.Bool("trace", false, "enable the frame-span trace collector on the middlebox engine")
	traceDump := flag.String("tracedump", "", "write a slot-replay of the recorded frame spans to this path after the run (\"-\" for stdout; implies -trace)")
	pcapPath := flag.String("pcap", "", "capture every frame crossing the fabric to this pcap file")
	flag.Parse()
	if *loss < 0 || *loss >= 1 {
		fmt.Fprintf(os.Stderr, "-loss must be in [0, 1), got %v\n", *loss)
		os.Exit(2)
	}
	if *traceDump != "" {
		*trace = true
	}
	if *pprofOn && *metrics == "" {
		fmt.Fprintln(os.Stderr, "-pprof requires -metrics <addr>")
		os.Exit(2)
	}

	mode := core.ModeDPDK
	if *modeS == "xdp" {
		mode = core.ModeXDP
	}
	tb := testbed.New(42)
	var engine *core.Engine
	var ues []*air.UE

	switch *app {
	case "das":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		var pos []radio.Point
		for f := 0; f < testbed.Floors; f++ {
			pos = append(pos, testbed.RUPosition(f, 1))
		}
		dep, err := tb.DASCell("das", cell, pos, testbed.DASOpts{Mode: mode, Cores: 2})
		exitOn(err)
		engine = dep.Engine
		for f := 0; f < testbed.Floors; f++ {
			ues = append(ues, tb.AddUE(f, testbed.RUXPositions[1]+4, radio.FloorWidth/2))
		}
	case "dmimo":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		pos := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
		dep, err := tb.DMIMOCell("dmimo", cell, pos, testbed.DMIMOOpts{Mode: mode, PortsPerRU: 2})
		exitOn(err)
		engine = dep.Engine
		ues = append(ues, tb.AddUE(0, (testbed.RUXPositions[1]+testbed.RUXPositions[2])/2, radio.FloorWidth/2))
	case "rushare":
		ruCarrier := testbed.Carrier100()
		duPRBs := phy.PRBsFor(40)
		cells := []air.CellConfig{
			testbed.CellConfig("mnoA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
			testbed.CellConfig("mnoB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		}
		dep, err := tb.SharedRU("share", ruCarrier, testbed.RUPosition(0, 0), cells, mode)
		exitOn(err)
		engine = dep.Engine
		a := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		a.AllowedCell = "mnoA"
		b := tb.AddUE(0, testbed.RUXPositions[0]-4, radio.FloorWidth/2)
		b.AllowedCell = "mnoB"
		ues = append(ues, a, b)
	case "prbmon":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("mon", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{Mode: mode})
		exitOn(err)
		engine = dep.Engine
		rec := telemetry.NewRecorder()
		rec.Attach(dep.Engine.Bus(), "")
		defer func() {
			for _, name := range rec.Names() {
				fmt.Printf("telemetry %-22s mean %.3f (%d samples)\n", name, rec.Mean(name), len(rec.Series(name)))
			}
		}()
		ues = append(ues, tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2))
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}

	if *trace {
		exitOn(engine.EnableTracing(0))
	}
	var pcapErr error
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		exitOn(err)
		defer f.Close()
		w := pcap.NewWriter(f)
		tb.Switch.SetTap(func(frame []byte) {
			if pcapErr == nil {
				pcapErr = w.WritePacket(time.Duration(tb.Sched.Now()), frame)
			}
		})
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		exitOn(err)
		defer ln.Close()
		mux := http.NewServeMux()
		// The handler touches only race-safe readouts (engine snapshot,
		// shared counters, trace histograms, atomic port stats), so
		// scraping is sound even while parallel workers run.
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			p := telemetry.NewPromWriter(w)
			engine.WriteMetrics(p)
			tb.Switch.WriteMetrics(p)
		})
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("serving /metrics on %v (pprof: %v)\n", ln.Addr(), *pprofOn)
	}

	for _, u := range ues {
		u.OfferedDLbps = *load * 1e6
		u.OfferedULbps = *load * 1e6 / 10
	}
	fmt.Printf("%s middlebox (%s datapath): settling...\n", *app, mode)
	tb.Settle()
	attached := 0
	for _, u := range ues {
		if u.Attached() {
			attached++
		}
	}
	fmt.Printf("%d/%d UEs attached; running %v of traffic\n", attached, len(ues), *dur)

	// Fault injection goes live only after settling: attachment happens on
	// a clean fabric, then the measured window sees the configured loss on
	// every device link.
	var injectors []*fault.Injector
	if *loss > 0 {
		for _, p := range tb.Switch.Ports() {
			inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{Drop: *loss})
			inj.Attach(p)
			injectors = append(injectors, inj)
		}
		fmt.Printf("fault injection: %.1f%% i.i.d. loss on %d links\n", *loss*100, len(injectors))
	}
	engine.ResetMeasurement()
	tb.Measure(*dur)

	now := tb.Sched.Now()
	var dl, ul float64
	for _, u := range ues {
		dl += u.ThroughputDLbps(now)
		ul += u.ThroughputULbps(now)
	}
	st := engine.Snapshot()
	fmt.Printf("aggregate goodput: DL %.1f Mbps, UL %.1f Mbps\n", dl/1e6, ul/1e6)
	fmt.Printf("middlebox: rx %d tx %d frames, kernelTx %d, punts %d, utilization %.1f%%\n",
		st.RxFrames, st.TxFrames, st.KernelTx, st.Punts, engine.Utilization()*100)
	if lat, ok := engine.LatencyPercentile(core.ClassULU, 0.99); ok {
		fmt.Printf("UL U-plane p99 processing: %v\n", lat)
	}
	if len(injectors) > 0 {
		var fs fault.Stats
		for _, inj := range injectors {
			fs = fs.Add(inj.Stats())
		}
		fmt.Printf("faults: dropped %d of %d frames; engine saw seq gaps %d, shed %d, health %v\n",
			fs.Dropped, fs.Injected, st.SeqGaps, st.ShedUPlane, st.Health)
	}
	if *trace && st.Trace != nil {
		fmt.Println()
		exitOn(telemetry.DumpTraceStats(os.Stdout, *st.Trace))
	}
	if *traceDump != "" {
		out := os.Stdout
		if *traceDump != "-" {
			f, err := os.Create(*traceDump)
			exitOn(err)
			defer f.Close()
			out = f
		}
		exitOn(telemetry.DumpTrace(out, engine.TraceSpans()))
		if *traceDump != "-" {
			fmt.Printf("wrote frame-span replay to %s\n", *traceDump)
		}
	}
	if *pcapPath != "" {
		exitOn(pcapErr)
		fmt.Printf("wrote capture to %s\n", *pcapPath)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

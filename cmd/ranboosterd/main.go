// Command ranboosterd runs a RANBooster middlebox deployment on the
// simulated enterprise testbed and reports live KPIs — the operational
// face of the framework: pick an application, a datapath, a duration.
//
// Usage:
//
//	ranboosterd -app das -mode dpdk -duration 500ms
//	ranboosterd -app dmimo -mode xdp
//	ranboosterd -app rushare
//	ranboosterd -app prbmon -load 400
//	ranboosterd -app prbmon -loss 0.05   # 5% loss on every fabric link
//	ranboosterd -app das -metrics :9090 -pprof      # Prometheus /metrics + pprof
//	ranboosterd -app das -trace -tracedump -        # slot replay of frame spans
//	ranboosterd -app das -trace -pcap run.pcap      # spans correlate with capture
//	ranboosterd -panic-every 1000                   # supervision demo: panic isolation
//	ranboosterd -stall-after 1ms -panic-every 250   # + watchdog restart of a wedged shard
//	ranboosterd -floors 8 -cells 4 -chain 3         # metro scenario: chained middleboxes
//	ranboosterd -floors 16 -chain 2 -metrics :9090  # live metrics across the whole chain
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fault"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/pcap"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func main() {
	app := flag.String("app", "das", "middlebox application: das | dmimo | rushare | prbmon")
	modeS := flag.String("mode", "dpdk", "datapath: dpdk | xdp")
	dur := flag.Duration("duration", 500*time.Millisecond, "simulated run time after settling")
	load := flag.Float64("load", 500, "offered downlink load per UE, Mbps")
	loss := flag.Float64("loss", 0, "i.i.d. frame loss probability injected on every fabric link")
	metrics := flag.String("metrics", "", "serve a Prometheus /metrics endpoint on this address (e.g. :9090) for the duration of the run")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics address")
	trace := flag.Bool("trace", false, "enable the frame-span trace collector on the middlebox engine")
	traceDump := flag.String("tracedump", "", "write a slot-replay of the recorded frame spans to this path after the run (\"-\" for stdout; implies -trace)")
	pcapPath := flag.String("pcap", "", "capture every frame crossing the fabric to this pcap file")
	panicEvery := flag.Int("panic-every", 0, "supervision demo: the App panics every Nth invocation; the engine isolates and quarantines (implies the standalone supervision harness)")
	stallAfterF := flag.Duration("stall-after", 0, "supervision demo: shard-watchdog deadline; the App also wedges once mid-run so the hitless restart is exercised (implies the standalone supervision harness)")
	floors := flag.Int("floors", 0, "metro scenario: number of floors (implies the standalone metro harness; see -cells and -chain)")
	cellsPerFloor := flag.Int("cells", 0, "metro scenario: cells per floor")
	chain := flag.Int("chain", 0, "metro scenario: middlebox chain depth (engines traversed in sequence)")
	flag.Parse()
	if *panicEvery < 0 || *stallAfterF < 0 {
		fmt.Fprintln(os.Stderr, "-panic-every and -stall-after must be non-negative")
		os.Exit(2)
	}
	if *panicEvery > 0 || *stallAfterF > 0 {
		superviseDemo(*panicEvery, *stallAfterF, *dur, *metrics)
		return
	}
	if *floors < 0 || *cellsPerFloor < 0 || *chain < 0 {
		fmt.Fprintln(os.Stderr, "-floors, -cells and -chain must be non-negative")
		os.Exit(2)
	}
	if *floors > 0 || *cellsPerFloor > 0 || *chain > 0 {
		metroDemo(*floors, *cellsPerFloor, *chain, *dur, *metrics, *trace, *modeS == "xdp")
		return
	}
	if *loss < 0 || *loss >= 1 {
		fmt.Fprintf(os.Stderr, "-loss must be in [0, 1), got %v\n", *loss)
		os.Exit(2)
	}
	if *traceDump != "" {
		*trace = true
	}
	if *pprofOn && *metrics == "" {
		fmt.Fprintln(os.Stderr, "-pprof requires -metrics <addr>")
		os.Exit(2)
	}

	mode := core.ModeDPDK
	if *modeS == "xdp" {
		mode = core.ModeXDP
	}
	tb := testbed.New(42)
	var engine *core.Engine
	var ues []*air.UE

	switch *app {
	case "das":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		var pos []radio.Point
		for f := 0; f < testbed.Floors; f++ {
			pos = append(pos, testbed.RUPosition(f, 1))
		}
		dep, err := tb.DASCell("das", cell, pos, testbed.DASOpts{Mode: mode, Cores: 2})
		exitOn(err)
		engine = dep.Engine
		for f := 0; f < testbed.Floors; f++ {
			ues = append(ues, tb.AddUE(f, testbed.RUXPositions[1]+4, radio.FloorWidth/2))
		}
	case "dmimo":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		pos := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
		dep, err := tb.DMIMOCell("dmimo", cell, pos, testbed.DMIMOOpts{Mode: mode, PortsPerRU: 2})
		exitOn(err)
		engine = dep.Engine
		ues = append(ues, tb.AddUE(0, (testbed.RUXPositions[1]+testbed.RUXPositions[2])/2, radio.FloorWidth/2))
	case "rushare":
		ruCarrier := testbed.Carrier100()
		duPRBs := phy.PRBsFor(40)
		cells := []air.CellConfig{
			testbed.CellConfig("mnoA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
			testbed.CellConfig("mnoB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		}
		dep, err := tb.SharedRU("share", ruCarrier, testbed.RUPosition(0, 0), cells, mode)
		exitOn(err)
		engine = dep.Engine
		a := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		a.AllowedCell = "mnoA"
		b := tb.AddUE(0, testbed.RUXPositions[0]-4, radio.FloorWidth/2)
		b.AllowedCell = "mnoB"
		ues = append(ues, a, b)
	case "prbmon":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("mon", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{Mode: mode})
		exitOn(err)
		engine = dep.Engine
		rec := telemetry.NewRecorder()
		rec.Attach(dep.Engine.Bus(), "")
		defer func() {
			for _, name := range rec.Names() {
				fmt.Printf("telemetry %-22s mean %.3f (%d samples)\n", name, rec.Mean(name), len(rec.Series(name)))
			}
		}()
		ues = append(ues, tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2))
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}

	if *trace {
		exitOn(engine.EnableTracing(0))
	}
	var pcapErr error
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		exitOn(err)
		defer f.Close()
		w := pcap.NewWriter(f)
		tb.Switch.SetTap(func(frame []byte) {
			if pcapErr == nil {
				pcapErr = w.WritePacket(time.Duration(tb.Sched.Now()), frame)
			}
		})
	}
	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		exitOn(err)
		defer ln.Close()
		mux := http.NewServeMux()
		// The handler touches only race-safe readouts (engine snapshot,
		// shared counters, trace histograms, atomic port stats), so
		// scraping is sound even while parallel workers run.
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			p := telemetry.NewPromWriter(w)
			engine.WriteMetrics(p)
			tb.Switch.WriteMetrics(p)
		})
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("serving /metrics on %v (pprof: %v)\n", ln.Addr(), *pprofOn)
	}

	for _, u := range ues {
		u.OfferedDLbps = *load * 1e6
		u.OfferedULbps = *load * 1e6 / 10
	}
	fmt.Printf("%s middlebox (%s datapath): settling...\n", *app, mode)
	tb.Settle()
	attached := 0
	for _, u := range ues {
		if u.Attached() {
			attached++
		}
	}
	fmt.Printf("%d/%d UEs attached; running %v of traffic\n", attached, len(ues), *dur)

	// Fault injection goes live only after settling: attachment happens on
	// a clean fabric, then the measured window sees the configured loss on
	// every device link.
	var injectors []*fault.Injector
	if *loss > 0 {
		for _, p := range tb.Switch.Ports() {
			inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{Drop: *loss})
			inj.Attach(p)
			injectors = append(injectors, inj)
		}
		fmt.Printf("fault injection: %.1f%% i.i.d. loss on %d links\n", *loss*100, len(injectors))
	}
	engine.ResetMeasurement()
	tb.Measure(*dur)

	now := tb.Sched.Now()
	var dl, ul float64
	for _, u := range ues {
		dl += u.ThroughputDLbps(now)
		ul += u.ThroughputULbps(now)
	}
	st := engine.Snapshot()
	fmt.Printf("aggregate goodput: DL %.1f Mbps, UL %.1f Mbps\n", dl/1e6, ul/1e6)
	fmt.Printf("middlebox: rx %d tx %d frames, kernelTx %d, punts %d, utilization %.1f%%\n",
		st.RxFrames, st.TxFrames, st.KernelTx, st.Punts, engine.Utilization()*100)
	if lat, ok := engine.LatencyPercentile(core.ClassULU, 0.99); ok {
		fmt.Printf("UL U-plane p99 processing: %v\n", lat)
	}
	if len(injectors) > 0 {
		var fs fault.Stats
		for _, inj := range injectors {
			fs = fs.Add(inj.Stats())
		}
		fmt.Printf("faults: dropped %d of %d frames; engine saw seq gaps %d, shed %d, health %v\n",
			fs.Dropped, fs.Injected, st.SeqGaps, st.ShedUPlane, st.Health)
	}
	if *trace && st.Trace != nil {
		fmt.Println()
		exitOn(telemetry.DumpTraceStats(os.Stdout, *st.Trace))
	}
	if *traceDump != "" {
		out := os.Stdout
		if *traceDump != "-" {
			f, err := os.Create(*traceDump)
			exitOn(err)
			defer f.Close()
			out = f
		}
		exitOn(telemetry.DumpTrace(out, engine.TraceSpans()))
		if *traceDump != "-" {
			fmt.Printf("wrote frame-span replay to %s\n", *traceDump)
		}
	}
	if *pcapPath != "" {
		exitOn(pcapErr)
		fmt.Printf("wrote capture to %s\n", *pcapPath)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// demoForward is the identity App of the supervision demo: frames are
// forwarded untouched, so anything that fails to come back out was lost
// by the engine — which, under supervision, must be (nearly) nothing.
type demoForward struct{}

func (demoForward) Name() string { return "supervise-demo" }
func (demoForward) Handle(ctx *core.Context, pkt *fh.Packet) error {
	ctx.Forward(pkt)
	return nil
}

// superviseDemo is the standalone engine-supervision harness behind
// -panic-every / -stall-after: a 2-core parallel engine forwards a
// synthetic U-plane load while the App misbehaves on the configured
// schedule, and the run reports what the supervision machinery did about
// it — recovered panics, quarantined frames, breaker transitions, shard
// restarts, adaptive sheds. With -metrics the Prometheus endpoint stays
// up for the run, exporting ranbooster_app_panics_total,
// ranbooster_breaker_state, ranbooster_shard_restarts_total and
// ranbooster_shed_total alongside the usual engine series.
func superviseDemo(panicEvery int, stallAfter, dur time.Duration, metrics string) {
	s := sim.NewScheduler()
	var app core.App = demoForward{}
	var pstats *fault.PanicStats
	if panicEvery > 0 {
		app, pstats = fault.PanicEvery(app, panicEvery, 42)
	}
	const cadence = 10 * time.Microsecond
	frames := int(dur / cadence)
	if frames < 1024 {
		frames = 1024
	}
	var stall *fault.Stall
	if stallAfter > 0 {
		app, stall = fault.StallFor(app, uint64(frames/2))
	}
	pol := core.SupervisePolicy{
		StallAfter:    stallAfter,
		ShedHighWater: 0.75,
		ShedLowWater:  0.25,
	}
	if panicEvery > 0 {
		pol.PanicBudget = 3
	}
	eng, err := core.NewEngine(s, core.Config{
		Name: "supervise-demo", Mode: core.ModeDPDK, Cores: 2, App: app,
		CarrierPRBs: 106, RingSize: 512, Supervise: pol,
	})
	exitOn(err)
	var tx atomic.Uint64
	eng.SetOutput(func([]byte) { tx.Add(1) })
	rec := telemetry.NewRecorder()
	rec.Attach(eng.Bus(), core.KPIBreaker)

	if metrics != "" {
		ln, err := net.Listen("tcp", metrics)
		exitOn(err)
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			eng.WriteMetrics(telemetry.NewPromWriter(w))
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("serving /metrics on %v\n", ln.Addr())
	}

	poll := 100 * time.Microsecond
	if stallAfter > 0 {
		poll = stallAfter / 4
	}
	exitOn(eng.Start())
	if stall != nil {
		// The wedged call frees itself after 10x the watchdog deadline —
		// long after the supervisor has restarted the shard around it.
		defer stall.Arm(s, 10*stallAfter, poll)()
	}
	fmt.Printf("supervision demo: %d frames on 2 cores", frames)
	if panicEvery > 0 {
		fmt.Printf("; app panics every %dth call (budget %d)", panicEvery, pol.PanicBudget)
	}
	if stallAfter > 0 {
		fmt.Printf("; app wedges at call %d (watchdog %v)", frames/2, stallAfter)
	}
	fmt.Println()

	builders := [2]*fh.Builder{
		fh.NewBuilder(eth.MAC{2, 0, 0, 0, 0, 1}, eth.MAC{2, 0, 0, 0, 0, 2}, -1),
		fh.NewBuilder(eth.MAC{2, 0, 0, 0, 0, 1}, eth.MAC{2, 0, 0, 0, 0, 2}, -1),
	}
	var tWedge, tRestart sim.Time
	step := func() {
		// Let the workers run between virtual-time polls (single-CPU
		// hosts otherwise starve them against this driver loop).
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		s.RunFor(poll)
		eng.Supervise()
		if stall != nil {
			if tWedge == 0 && stall.Stalled() {
				tWedge = s.Now()
			}
			if tRestart == 0 && eng.Snapshot().ShardRestarts > 0 {
				tRestart = s.Now()
			}
		}
	}
	for i := 0; i < frames; i++ {
		port := uint8(i % 2)
		f := demoFrame(builders[port], port, int16(i))
		for !eng.TryIngress(f) {
			step()
		}
		if i%16 == 0 {
			step()
		}
	}
	for i := 0; i < 4000 && eng.Snapshot().RxFrames < uint64(frames); i++ {
		step()
	}
	eng.Stop()

	st := eng.Snapshot()
	fmt.Printf("forwarded %d of %d frames (rx %d, shed %d data + %d PRACH, ring drops %d)\n",
		tx.Load(), frames, st.RxFrames, st.ShedUPlane, st.ShedPRACH, st.RingDrops)
	if pstats != nil {
		fmt.Printf("panic isolation: %d injected panics, %d recovered, %d frames quarantined to passthrough; breaker %v after %d transitions\n",
			pstats.Panics(), st.AppPanics, st.Quarantined, st.Breaker, len(rec.Series(core.KPIBreaker)))
	}
	if stall != nil {
		if tRestart > 0 {
			fmt.Printf("watchdog: wedge observed at %v, shard restarted by %v (bound StallAfter + 2 polls = %v); restarts %d\n",
				time.Duration(tWedge), time.Duration(tRestart), stallAfter+2*poll, st.ShardRestarts)
		} else {
			fmt.Printf("watchdog: no restart observed (restarts %d)\n", st.ShardRestarts)
		}
	}
	fmt.Printf("engine health: %v\n", st.Health)
}

// metroDemo is the standalone metro-scale harness behind -floors /
// -cells / -chain: a building of floors x cells (4 eAxC streams per
// cell) injecting Poisson uplink traffic into a chain of middlebox
// engines on a multi-hop fabric, admitted through the work-stealing
// pool. The run covers -duration of virtual slot time, then prints the
// per-hop frame-conservation ledger and the end-of-chain sink's
// per-stream sequence audit. With -metrics every engine in the chain
// (and every fabric switch) exports on one Prometheus endpoint,
// distinguished by their ranbooster_* name labels.
func metroDemo(floors, cellsPerFloor, chain int, dur time.Duration, metrics string, trace, xdp bool) {
	cfg := testbed.MetroConfig{
		Floors:        floors,
		CellsPerFloor: cellsPerFloor,
		ChainDepth:    chain,
		Cores:         4,
		Scale:         core.ScalePolicy{WorkSteal: true},
		Trace:         trace,
		Kernel:        xdp,
		Seed:          42,
	}
	m, err := testbed.NewMetro(cfg)
	exitOn(err)
	cfg = m.Config()
	slots := int(dur / phy.SlotDuration)
	if slots < 1 {
		slots = 1
	}
	fmt.Printf("metro scenario: %d floors x %d cells (%d eAxC streams), chain depth %d, %d cores/engine, work-stealing admission\n",
		cfg.Floors, cfg.CellsPerFloor, cfg.Streams(), cfg.ChainDepth, cfg.Cores)

	if metrics != "" {
		ln, err := net.Listen("tcp", metrics)
		exitOn(err)
		defer ln.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			p := telemetry.NewPromWriter(w)
			for _, e := range m.Engines {
				e.WriteMetrics(p)
			}
			for _, sw := range m.Topo.Switches() {
				sw.WriteMetrics(p)
			}
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("serving /metrics on %v (%d engines, %d switches)\n",
			ln.Addr(), len(m.Engines), len(m.Topo.Switches()))
	}

	start := time.Now()
	m.RunSlots(slots)
	m.Flush()
	wall := time.Since(start)

	rep := m.Conservation(0)
	fmt.Printf("%d slots (%v virtual) in %v wall: %d frames injected\n",
		slots, time.Duration(slots)*phy.SlotDuration, wall.Round(time.Millisecond), rep.Injected)
	var steals uint64
	var tr telemetry.TraceStats
	for i, e := range m.Engines {
		st := e.Snapshot()
		steals += st.Steals
		if st.Trace != nil {
			tr = tr.Merge(*st.Trace)
		}
		h := rep.Hops[i]
		fmt.Printf("  hop %d (%s): arrived %d, forwarded %d, lost %d, steals %d\n",
			i, e.Name(), h.Arrived, h.Forwarded, h.Lost, st.Steals)
	}
	sink := rep.Sink
	fmt.Printf("sink: delivered %d on %d streams; seq gaps %d, duplicates %d, reordered %d\n",
		sink.Delivered, sink.Streams, sink.Gaps, sink.Duplicates, sink.Reordered)
	if err := rep.Check(); err != nil {
		fmt.Printf("frame conservation: VIOLATED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("frame conservation: every frame accounted for at every hop")
	if trace {
		if p50, ok := tr.Stage[telemetry.StageTotal].Quantile(0.50); ok {
			p99, _ := tr.Stage[telemetry.StageTotal].Quantile(0.99)
			fmt.Printf("per-frame sojourn across the chain: p50 %v, p99 %v\n", p50, p99)
		}
	}
}

// demoFrame builds one downlink U-plane frame for the supervision demo.
func demoFrame(b *fh.Builder, port uint8, fill int16) []byte {
	g := iq.NewGrid(4)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: fill, Q: -fill}
		}
	}
	p := bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint}
	payload, err := bfp.CompressGrid(nil, g, p)
	exitOn(err)
	return b.UPlane(ecpri.PcID{RUPort: port}, &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: uint8(fill), SymbolID: uint8(fill) % 14},
		Sections: []oran.USection{{NumPRB: 4, Comp: p, Payload: payload}},
	})
}

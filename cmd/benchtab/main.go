// Command benchtab regenerates the paper's tables and figures on the
// simulated testbed and prints them in the same rows/series the paper
// reports.
//
// Usage:
//
//	benchtab -list
//	benchtab -run fig10a
//	benchtab -run table2,fig10b
//	benchtab -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ranbooster"
)

func main() {
	list := flag.Bool("list", false, "list available experiment ids")
	run := flag.String("run", "", "comma-separated experiment ids, or \"all\"")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range ranbooster.ExperimentIDs() {
			fmt.Println("  ", id)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun with -run <id>[,<id>...] or -run all")
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = ranbooster.ExperimentIDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := ranbooster.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		table := runner()
		fmt.Println(table)
		fmt.Printf("(regenerated in %.1fs)\n\n", time.Since(start).Seconds())
	}
}

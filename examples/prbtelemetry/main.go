// PRB telemetry: the §4.4 monitoring middlebox feeding an energy-saver
// application — the class of consumer the paper motivates (congestion
// control, bitrate adaptation, energy savings) that today's coarse E2
// KPIs cannot serve. The middlebox estimates PRB utilization from BFP
// exponents in real time; the subscriber decides when the cell could be
// put to sleep.
//
//	go run ./examples/prbtelemetry
package main

import (
	"fmt"
	"time"

	"ranbooster"
	"ranbooster/internal/telemetry"
)

func main() {
	tb := ranbooster.NewTestbed(3)
	cell := ranbooster.NewCell("monitored", 1, ranbooster.Carrier100(), ranbooster.StackSRSRAN, 4)
	dep, err := tb.MonitoredCell("mon", cell, ranbooster.RUPosition(0, 0),
		ranbooster.MonitorOpts{Mode: ranbooster.ModeDPDK})
	if err != nil {
		panic(err)
	}

	// The energy saver subscribes to the middlebox's telemetry bus and
	// tracks utilization windows.
	type window struct {
		at   time.Duration
		util float64
	}
	var history []window
	dep.Engine.Bus().Subscribe("prb.utilization.dl", func(s telemetry.Sample) {
		history = append(history, window{at: time.Duration(s.At), util: s.Value})
	})

	ue := tb.AddUE(0, 10, 10.5)
	tb.Settle()

	// A bursty day: busy, quiet, busy.
	phases := []struct {
		label string
		mbps  float64
	}{
		{"busy hour", 600},
		{"quiet period", 30},
		{"evening peak", 500},
	}
	for _, ph := range phases {
		ue.OfferedDLbps = ph.mbps * 1e6
		tb.Run(400 * time.Millisecond)
		fmt.Printf("-- %s (%.0f Mbps offered) --\n", ph.label, ph.mbps)
	}

	// The saver's policy: three consecutive windows under 10% ⇒ the cell
	// is a sleep candidate.
	low := 0
	for _, w := range history {
		state := "active"
		if w.util < 0.10 {
			low++
			if low >= 3 {
				state = "SLEEP CANDIDATE"
			} else {
				state = "low"
			}
		} else {
			low = 0
		}
		fmt.Printf("t=%-8v dl utilization %5.1f%%  -> %s\n", w.at.Round(time.Millisecond), w.util*100, state)
	}
	fmt.Println("\nthe estimate comes from compression exponents alone — no IQ was decompressed,")
	fmt.Println("no RAN vendor hook was needed, and the granularity is sub-millisecond (paper §4.4).")
}

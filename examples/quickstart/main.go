// Quickstart: deploy a RANBooster DAS middlebox that extends one 100 MHz
// cell across two floors — the smallest end-to-end scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"ranbooster"
)

func main() {
	// A deterministic testbed: five-floor building, TOR switch, radio model.
	tb := ranbooster.NewTestbed(1)

	// One 100 MHz 4x4 cell (srsRAN-profile DU), distributed by a DAS
	// middlebox over an RU on floor 0 and an RU on floor 1.
	cell := ranbooster.NewCell("quickstart", 1, ranbooster.Carrier100(), ranbooster.StackSRSRAN, 4)
	dep, err := tb.DASCell("quick", cell, []ranbooster.Point{
		ranbooster.RUPosition(0, 1),
		ranbooster.RUPosition(1, 1),
	}, ranbooster.DASOpts{Mode: ranbooster.ModeDPDK})
	if err != nil {
		panic(err)
	}

	// One UE per floor, each pulling a 400 Mbps iperf-style stream.
	ues := []*ranbooster.UE{
		tb.AddUE(0, 23, 10.5),
		tb.AddUE(1, 23, 10.5),
	}
	for _, u := range ues {
		u.OfferedDLbps = 400e6
		u.OfferedULbps = 40e6
	}

	// Let attachment and link adaptation converge, then measure.
	tb.Settle()
	for i, u := range ues {
		fmt.Printf("floor %d UE attached: %v (%v)\n", i, u.Attached(), u)
	}
	tb.Measure(300 * time.Millisecond)

	now := tb.Sched.Now()
	var dl, ul float64
	for _, u := range ues {
		dl += u.ThroughputDLbps(now)
		ul += u.ThroughputULbps(now)
	}
	fmt.Printf("aggregate goodput through the DAS: DL %.1f Mbps, UL %.1f Mbps\n",
		ranbooster.Mbps(dl), ranbooster.Mbps(ul))
	fmt.Printf("uplink IQ merges performed by the middlebox: %d\n", dep.App.Merges.Load())
	fmt.Println("the same cell would cover only one floor without the middlebox —")
	fmt.Println("no DU, RU or infrastructure change was needed to add the second.")
}

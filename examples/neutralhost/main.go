// Neutral host: the Fig. 12 scenario — two mobile network operators share
// the same four physical RUs through a chain of RANBooster middleboxes
// (RU sharing → DAS), each getting a 40 MHz slice of a 100 MHz spectrum
// with seamless floor-wide coverage.
//
//	go run ./examples/neutralhost
package main

import (
	"fmt"
	"time"

	"ranbooster"
)

func main() {
	tb := ranbooster.NewTestbed(2)
	ruCarrier := ranbooster.Carrier100()
	duPRBs := 106 // 40 MHz at 30 kHz SCS

	// The DAS middlebox will distribute the shared downstream across the
	// floor's four RUs.
	dasMAC := tb.NewMAC()
	var ruMACs []ranbooster.MAC
	for i := 0; i < 4; i++ {
		_, mac := tb.AddRU(fmt.Sprintf("ru%d", i), ranbooster.RUPosition(0, i), ranbooster.RUOpts{
			Carrier: ruCarrier, Ports: 4, Peer: dasMAC,
		})
		ruMACs = append(ruMACs, mac)
	}

	// Two tenants, their 40 MHz centers chosen by the Appendix A.1.1
	// formula so PRB grids align with the shared RU (compressed-copy fast
	// path in the multiplexer).
	shareMAC := tb.NewMAC()
	cellA := ranbooster.NewCell("mno-a", 21,
		ranbooster.Carrier{BandwidthMHz: 40, CenterHz: ranbooster.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs},
		ranbooster.StackSRSRAN, 4)
	cellB := ranbooster.NewCell("mno-b", 22,
		ranbooster.Carrier{BandwidthMHz: 40, CenterHz: ranbooster.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs},
		ranbooster.StackSRSRAN, 4)

	_, duA := tb.AddDU("mno-a-du", ranbooster.DUOpts{Cell: cellA, Peer: shareMAC, DUPortID: 1})
	_, duB := tb.AddDU("mno-b-du", ranbooster.DUOpts{Cell: cellB, Peer: shareMAC, DUPortID: 2})

	// RU-sharing middlebox: its "RU" is the DAS middlebox (chaining).
	shareApp, err := ranbooster.NewRUShare(ranbooster.RUShareConfig{
		Name: "rushare", MAC: shareMAC, RU: dasMAC,
		RUCarrier: ruCarrier, Comp: bfp9(),
		DUs: []ranboosterRUShareDU{
			{MAC: duA, Carrier: cellA.Carrier, PortID: 1},
			{MAC: duB, Carrier: cellB.Carrier, PortID: 2},
		},
	})
	if err != nil {
		panic(err)
	}
	shareEng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
		Name: "rushare", Mode: ranbooster.ModeDPDK, App: shareApp, CarrierPRBs: ruCarrier.NumPRB,
	})
	if err != nil {
		panic(err)
	}
	tb.AddEngine(shareEng, shareMAC)

	// DAS middlebox: its "DU" is the RU-sharing middlebox.
	dasApp := ranbooster.NewDAS(ranbooster.DASConfig{
		Name: "das", MAC: dasMAC, DU: shareMAC, RUs: ruMACs,
		CarrierPRBs: ruCarrier.NumPRB,
	})
	dasEng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
		Name: "das", Mode: ranbooster.ModeDPDK, Cores: 2, App: dasApp, CarrierPRBs: ruCarrier.NumPRB,
	})
	if err != nil {
		panic(err)
	}
	tb.AddEngine(dasEng, dasMAC)

	// One subscriber per operator, at different ends of the floor.
	ua := tb.AddUE(0, 21, 10.5)
	ua.AllowedCell = "mno-a"
	ua.OfferedDLbps = 700e6
	ub := tb.AddUE(0, 30, 10.5)
	ub.AllowedCell = "mno-b"
	ub.OfferedDLbps = 700e6

	tb.Settle()
	tb.Measure(300 * time.Millisecond)
	now := tb.Sched.Now()
	fmt.Printf("MNO A subscriber: attached=%v DL %.1f Mbps\n", ua.Attached(), ranbooster.Mbps(ua.ThroughputDLbps(now)))
	fmt.Printf("MNO B subscriber: attached=%v DL %.1f Mbps\n", ub.Attached(), ranbooster.Mbps(ub.ThroughputDLbps(now)))
	fmt.Printf("multiplexed DL packets %d, demultiplexed UL %d, PRACH merges %d\n",
		shareApp.Muxed.Load(), shareApp.Demuxed.Load(), shareApp.PRACHMuxed.Load())
	fmt.Println("two networks, one set of radios — software only (paper Fig. 12: ~350 Mbps each).")
}

type ranboosterRUShareDU = ranbooster.RUShareDU

func bfp9() ranbooster.Compression { return ranbooster.BFP9() }

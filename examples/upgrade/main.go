// Flexible upgrade: the Fig. 13 scenario — a floor of four cheap
// single-antenna RUs runs as a SISO DAS (vendor A's middlebox); when
// capacity demands grow, the operator swaps in a dMIMO middlebox
// (vendor B) that turns the same radios into a 4-layer cell. No
// infrastructure change, only software.
//
//	go run ./examples/upgrade
package main

import (
	"fmt"
	"time"

	"ranbooster"
)

func run(label string, dmimo bool) {
	tb := ranbooster.NewTestbed(4)
	positions := []ranbooster.Point{
		ranbooster.RUPosition(0, 0), ranbooster.RUPosition(0, 1),
		ranbooster.RUPosition(0, 2), ranbooster.RUPosition(0, 3),
	}
	var err error
	if dmimo {
		cell := ranbooster.NewCell("floor", 1, ranbooster.Carrier100(), ranbooster.StackSRSRAN, 4)
		_, err = tb.DMIMOCell("upgrade", cell, positions, ranbooster.DMIMOOpts{
			Mode: ranbooster.ModeDPDK, PortsPerRU: 1, Cheap: true,
		})
	} else {
		cell := ranbooster.NewCell("floor", 1, ranbooster.Carrier100(), ranbooster.StackSRSRAN, 1)
		_, err = tb.DASCell("upgrade", cell, positions, ranbooster.DASOpts{
			Mode: ranbooster.ModeDPDK, Ports: 1, Cheap: true,
		})
	}
	if err != nil {
		panic(err)
	}

	mobile := tb.AddUE(0, 4, 10.5)
	mobile.OfferedDLbps = 900e6
	tb.Settle()

	fmt.Printf("%s\n", label)
	var sum float64
	n := 0
	for _, x := range []float64{6, 16, 26, 36, 46} {
		mobile.Pos = ranbooster.Point{X: x, Y: 10.5, Z: 1.5}
		tb.Run(150 * time.Millisecond)
		tb.Measure(150 * time.Millisecond)
		v := mobile.ThroughputDLbps(tb.Sched.Now())
		fmt.Printf("  x=%4.0fm: %6.1f Mbps\n", x, ranbooster.Mbps(v))
		sum += v
		n++
	}
	fmt.Printf("  floor average: %.1f Mbps\n\n", ranbooster.Mbps(sum/float64(n)))
}

func main() {
	run("vendor A: DAS middlebox, SISO cell over 4x1-antenna RUs", false)
	run("vendor B: dMIMO middlebox, 4-layer cell over the same RUs", true)
	fmt.Println("the swap is a container redeploy plus cell reconfiguration —")
	fmt.Println("the paper measures 2-3x higher throughput after it (Fig. 13).")
}

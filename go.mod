module ranbooster

go 1.22

// Package ranbooster is the public API of the RANBooster reproduction: a
// software middlebox framework for the O-RAN fronthaul (SIGCOMM 2025),
// together with the simulated enterprise testbed it is evaluated on.
//
// The package re-exports the stable surface of the internal packages:
//
//   - the middlebox framework (App, Context, Engine, kernel programs) —
//     the paper's §3 contribution;
//   - the four reference applications of §4 (DAS, dMIMO, RU sharing,
//     real-time PRB monitoring);
//   - the testbed (five floors, RUs, DUs, UEs, switch fabric) and the
//     scenario builders used by the examples and experiments;
//   - the experiment runners regenerating every table and figure of §6.
//
// A minimal middlebox:
//
//	type myApp struct{}
//
//	func (myApp) Name() string { return "my-middlebox" }
//	func (myApp) Handle(ctx *ranbooster.Context, pkt *ranbooster.Packet) error {
//		ctx.Forward(pkt) // A1; see also Replicate (A2), Cache (A3), ModifyUPlane (A4)
//		return nil
//	}
//
// wired into a testbed:
//
//	tb := ranbooster.NewTestbed(1)
//	eng, _ := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
//		Name: "my-middlebox", Mode: ranbooster.ModeDPDK, App: myApp{}, CarrierPRBs: 273,
//	})
//	tb.AddEngine(eng, tb.NewMAC())
//
// After a run, read the engine's merged datapath counters with
// eng.Snapshot(); set EngineConfig.Cores > 1 to shard the datapath by
// antenna-carrier stream, and eng.Start()/eng.Stop() to process on real
// parallel worker goroutines outside a simulated fabric.
//
// See examples/ for complete scenarios.
package ranbooster

import (
	"ranbooster/internal/air"
	"ranbooster/internal/apps/das"
	"ranbooster/internal/apps/dmimo"
	"ranbooster/internal/apps/fhguard"
	"ranbooster/internal/apps/prbmon"
	"ranbooster/internal/apps/resilience"
	"ranbooster/internal/apps/rushare"
	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/experiments"
	"ranbooster/internal/fh"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

// Middlebox framework (§3).
type (
	// App is the middlebox template: user code handling each C/U-plane
	// packet through the Context's A1-A4 actions. See core.App for the
	// concurrency contract Handle must meet on multi-core engines.
	App = core.App
	// SerialApp marks an App whose cross-stream state is not shard-safe;
	// such an App refuses parallel workers over more than one shard.
	SerialApp = core.SerialApp
	// BurstApp is the optional burst-aware App extension: an App that also
	// implements HandleBurst receives each drained burst of packets in one
	// call. Detected at engine construction; plain Apps keep the per-frame
	// Handle contract unchanged.
	BurstApp = core.BurstApp
	// BurstPolicy tunes the burst datapath (EngineConfig.Burst): batch
	// size, worker idle-poll tolerance, kernel fast-path retirement. The
	// zero value keeps the defaults.
	BurstPolicy = core.BurstPolicy
	// Context exposes the four RANBooster actions plus telemetry.
	Context = core.Context
	// Packet is one fronthaul frame with decoded protocol views.
	Packet = fh.Packet
	// Engine runs an App over a fronthaul attachment point; its datapath
	// is sharded across EngineConfig.Cores workers by eAxC RU port.
	Engine = core.Engine
	// EngineConfig configures an Engine. It is consumed by NewEngine;
	// mutating it afterwards is deprecated and unsupported.
	EngineConfig = core.Config
	// EngineStats is the merged datapath counter snapshot returned by
	// Engine.Snapshot; combine snapshots with its Add method.
	EngineStats = core.Stats
	// Mode selects the datapath (DPDK-like poll mode or XDP-like).
	Mode = core.Mode
	// KernelProgram is the verified in-kernel rule program of an XDP
	// middlebox.
	KernelProgram = core.KernelProgram
	// KernelRule is one rule of a KernelProgram.
	KernelRule = core.Rule
	// SupervisePolicy tunes engine supervision (EngineConfig.Supervise):
	// App panic isolation with a per-shard circuit breaker, the shard
	// stall watchdog behind Engine.Supervise, and AIMD overload shedding.
	// The zero value disables all three.
	SupervisePolicy = core.SupervisePolicy
	// ScalePolicy selects the engine's admission layout
	// (EngineConfig.Scale): the zero value keeps the static eAxC→shard
	// hash; WorkSteal replaces it with per-stream queues drained by a
	// work-stealing worker pool that preserves per-eAxC FIFO order while
	// spreading skewed load across all cores.
	ScalePolicy = core.ScalePolicy
	// BreakerState is the panic-isolation circuit breaker's position
	// (EngineStats.Breaker, and the KPIBreaker telemetry series).
	BreakerState = core.BreakerState
	// MAC is an Ethernet address.
	MAC = eth.MAC
)

// Engine construction and lifecycle errors, re-exported for errors.Is
// matching against NewEngine and Engine.Start failures.
var (
	// ErrNoApp rejects a DPDK engine with no userspace handler.
	ErrNoApp = core.ErrNoApp
	// ErrNoKernel rejects an XDP engine with no rule program.
	ErrNoKernel = core.ErrNoKernel
	// ErrKernelUnverified rejects a rule program that failed verification.
	ErrKernelUnverified = core.ErrKernelUnverified
	// ErrBadCores rejects a core count outside the supported range.
	ErrBadCores = core.ErrBadCores
	// ErrBadBatch rejects a burst batch size outside the supported range.
	ErrBadBatch = core.ErrBadBatch
	// ErrBadIdlePolls rejects a negative BurstPolicy.MaxIdlePolls.
	ErrBadIdlePolls = core.ErrBadIdlePolls
	// ErrSerialApp refuses parallel workers for a SerialApp on a
	// multi-shard engine.
	ErrSerialApp = core.ErrSerialApp
	// ErrRunning rejects Start on an already-started engine.
	ErrRunning = core.ErrRunning
	// ErrBadPanicBudget rejects a negative SupervisePolicy.PanicBudget.
	ErrBadPanicBudget = core.ErrBadPanicBudget
	// ErrBadCooldown rejects a negative SupervisePolicy.BreakerCooldown.
	ErrBadCooldown = core.ErrBadCooldown
	// ErrBadStallAfter rejects a negative SupervisePolicy.StallAfter.
	ErrBadStallAfter = core.ErrBadStallAfter
	// ErrBadShedWater rejects AIMD shed watermarks outside
	// 0 <= low < high <= 1.
	ErrBadShedWater = core.ErrBadShedWater
	// ErrBadRing rejects a ring capacity out of range — the engine's
	// RingSize or a ScalePolicy.StreamRing.
	ErrBadRing = core.ErrBadRing
	// ErrBadMaxStreams rejects a ScalePolicy.MaxStreams outside the
	// supported range.
	ErrBadMaxStreams = core.ErrBadMaxStreams
	// ErrBadHedge rejects a negative ScalePolicy.HedgeAfterPolls.
	ErrBadHedge = core.ErrBadHedge
	// ErrScaleSupervise rejects combining work-stealing admission with a
	// supervision mechanism that assumes the static shard layout (the
	// stall watchdog, AIMD shedding).
	ErrScaleSupervise = core.ErrScaleSupervise
)

// Datapath modes.
const (
	ModeDPDK = core.ModeDPDK
	ModeXDP  = core.ModeXDP
)

// Circuit breaker states (EngineStats.Breaker), ordered by severity.
const (
	BreakerClosed   = core.BreakerClosed
	BreakerHalfOpen = core.BreakerHalfOpen
	BreakerOpen     = core.BreakerOpen
)

// DefaultBreakerCooldown is the Open → Half-Open delay used when panic
// isolation is enabled without an explicit SupervisePolicy.BreakerCooldown.
const DefaultBreakerCooldown = core.DefaultBreakerCooldown

// KPIBreaker is the telemetry series name of breaker transitions.
const KPIBreaker = core.KPIBreaker

// NewEngine builds and verifies a middlebox engine.
var NewEngine = core.NewEngine

// Reference applications (§4).
type (
	// DAS is the distributed antenna system middlebox (§4.1).
	DAS = das.App
	// DASConfig configures a DAS middlebox.
	DASConfig = das.Config
	// DMIMO is the distributed MIMO middlebox (§4.2).
	DMIMO = dmimo.App
	// DMIMOConfig configures a dMIMO middlebox.
	DMIMOConfig = dmimo.Config
	// RUShare is the RU sharing middlebox (§4.3, Algorithms 2-3).
	RUShare = rushare.App
	// RUShareConfig configures an RU sharing middlebox.
	RUShareConfig = rushare.Config
	// RUShareDU describes one RU-sharing tenant.
	RUShareDU = rushare.DUInfo
	// PRBMonitor is the real-time PRB monitoring middlebox (§4.4,
	// Algorithm 1).
	PRBMonitor = prbmon.App
	// PRBMonitorConfig configures a PRB monitor.
	PRBMonitorConfig = prbmon.Config
	// Resilience is the §8.1 DU-failover middlebox.
	Resilience = resilience.App
	// ResilienceConfig configures a resilience middlebox.
	ResilienceConfig = resilience.Config
	// FHGuard is the §8.1 fronthaul security middlebox.
	FHGuard = fhguard.App
	// FHGuardConfig configures a fronthaul guard.
	FHGuardConfig = fhguard.Config
)

// Application constructors.
var (
	NewDAS        = das.New
	NewDMIMO      = dmimo.New
	NewRUShare    = rushare.New
	NewPRBMonitor = prbmon.New
	NewResilience = resilience.New
	NewFHGuard    = fhguard.New
)

// Testbed (§6.1).
type (
	// Testbed is the assembled five-floor deployment.
	Testbed = testbed.TB
	// Metro is a metro-scale scenario: hundreds of RUs over a multi-hop
	// fabric with chained middleboxes on successive switches, driven by
	// aggregate per-cell arrival processes instead of per-UE state.
	Metro = testbed.Metro
	// MetroConfig sizes a Metro (floors × cells, eAxC streams per RU,
	// chain depth, admission layout).
	MetroConfig = testbed.MetroConfig
	// MetroSinkStats is what the far end of a metro chain observed.
	MetroSinkStats = testbed.MetroSinkStats
	// MetroConservation is the frame ledger of a finished metro run;
	// its Check method verifies conservation at every hop and end to end.
	MetroConservation = testbed.ConservationReport
	// UE is a user device.
	UE = air.UE
	// CellConfig describes a cell.
	CellConfig = air.CellConfig
	// Carrier describes a carrier's spectrum position.
	Carrier = phy.Carrier
	// StackProfile models one RAN vendor's implementation.
	StackProfile = phy.StackProfile
	// Point is a 3-D testbed position.
	Point = radio.Point
)

// Scenario builders (methods on Testbed) and their options.
type (
	// DASOpts tunes Testbed.DASCell.
	DASOpts = testbed.DASOpts
	// DMIMOOpts tunes Testbed.DMIMOCell.
	DMIMOOpts = testbed.DMIMOOpts
	// MonitorOpts tunes Testbed.MonitoredCell.
	MonitorOpts = testbed.MonitorOpts
	// RUOpts tunes Testbed.AddRU.
	RUOpts = testbed.RUOpts
	// DUOpts tunes Testbed.AddDU.
	DUOpts = testbed.DUOpts
	// DASDeployment is an assembled §4.1 scenario.
	DASDeployment = testbed.DASDeployment
	// DMIMODeployment is an assembled §4.2 scenario.
	DMIMODeployment = testbed.DMIMODeployment
	// SharedRUDeployment is an assembled §4.3 scenario.
	SharedRUDeployment = testbed.SharedRUDeployment
	// MonitoredDeployment is an assembled §4.4 scenario.
	MonitoredDeployment = testbed.MonitoredDeployment
)

// Testbed constructors and helpers.
var (
	// NewTestbed builds an empty testbed for a deterministic seed.
	NewTestbed = testbed.New
	// NewMetro lays out a metro-scale chained scenario.
	NewMetro = testbed.NewMetro
	// NewCarrier positions a carrier (bandwidth MHz, center Hz).
	NewCarrier = phy.NewCarrier
	// NewCell builds a standard cell configuration.
	NewCell = testbed.CellConfig
	// Carrier100 is the default 100 MHz band-78 carrier.
	Carrier100 = testbed.Carrier100
	// RUPosition places a standard ceiling RU (floor, index 0-3).
	RUPosition = testbed.RUPosition
	// Mbps converts bits/s for reporting.
	Mbps = testbed.Mbps
	// BFP9 is the 9-bit block-floating-point compression of the testbed.
	BFP9 = testbed.BFP9
)

// Compression describes U-plane payload compression parameters.
type Compression = bfp.Params

// Vendor stacks of the paper's interoperability matrix.
var (
	StackSRSRAN    = phy.StackSRSRAN
	StackCapGemini = phy.StackCapGemini
	StackRadisys   = phy.StackRadisys
)

// Frequency planning helpers (Appendix A.1).
var (
	// AlignedDUCenterHz derives a DU center frequency whose PRB grid
	// aligns with the shared RU's (Appendix A.1.1).
	AlignedDUCenterHz = phy.AlignedDUCenterHz
	// TranslateFreqOffset converts PRACH frequency offsets between DU and
	// RU spectra (Appendix A.1.2).
	TranslateFreqOffset = phy.TranslateFreqOffset
)

// Observability (DESIGN.md §6.3): the frame-level trace collector and the
// Prometheus export surface. Enable with EngineConfig.Trace or
// Engine.EnableTracing; read merged histograms from Snapshot().Trace and
// recorded spans from Engine.TraceSpans.
type (
	// TraceSpan is one recorded frame's journey through the datapath,
	// with per-stage durations and A1-A4 action attribution.
	TraceSpan = telemetry.Span
	// TraceStage indexes a span's datapath stages (queue, decode,
	// kernel, app, total).
	TraceStage = telemetry.Stage
	// TraceAction indexes the RANBooster actions A1-A4.
	TraceAction = telemetry.Action
	// TraceStats is the merged histogram snapshot in EngineStats.Trace.
	TraceStats = telemetry.TraceStats
	// PromWriter renders metrics in the Prometheus text format.
	PromWriter = telemetry.PromWriter
)

// Observability helpers.
var (
	// NewPromWriter wraps an io.Writer for Prometheus text rendering;
	// pair with Engine.WriteMetrics.
	NewPromWriter = telemetry.NewPromWriter
	// DumpTrace writes a slot-by-slot replay of recorded spans.
	DumpTrace = telemetry.DumpTrace
	// DumpTraceStats writes a per-stage/per-action percentile table.
	DumpTraceStats = telemetry.DumpTraceStats
	// TraceQuantiles extracts (p50, p99, p99.9) from one histogram.
	TraceQuantiles = telemetry.Quantiles
)

// Experiments: regenerate the paper's tables and figures.
type ExperimentTable = experiments.Table

// Experiments maps experiment ids (table2, fig10a … fig16, costs,
// ablate-*) to their runners.
var Experiments = experiments.Registry

// ExperimentIDs lists the available experiment ids.
var ExperimentIDs = experiments.IDs

# Stdlib-only Go repo: these targets are exactly what CI runs.

GO ?= go

.PHONY: all build vet ranvet lint test race short chaos chaos-supervise bench fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ranvet enforces the datapath invariants (hot-path allocations, atomic
# field discipline, shard safety, sim-clock purity, wire bounds). See
# internal/analysis and DESIGN.md §6.4.
ranvet:
	$(GO) run ./cmd/ranvet ./...

# lint = vet + ranvet, plus govulncheck and golangci-lint when installed
# (CI installs them; local runs skip what's missing rather than fail).
lint: vet ranvet
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick signal: unit tests only (system tests skip themselves in -short).
short:
	$(GO) test -short ./...

# Chaos smoke: the fault-injection layer's own tests plus the seeded
# chaos regressions that are cheap enough for a pre-commit loop.
chaos:
	$(GO) test ./internal/fault/ -run . -count=1
	$(GO) test ./internal/testbed/ -run 'TestChaos' -count=1
	$(GO) test ./internal/fabric/ -race -run TestPortStatsConcurrentRead -count=1

# Supervision chaos smoke: the seeded panic/stall/shed acceptance run
# (internal/fault) under the race detector, plus the supervision rows of
# the chaos experiment. Everything is sim-clocked and deterministic.
chaos-supervise:
	$(GO) test ./internal/fault/ -race -run 'TestChaosSupervisionAcceptance|TestPanicEvery|TestStall' -count=1
	$(GO) test ./internal/experiments/ -run TestSuperviseScenarios -count=1 -v

# Bench regression snapshot: runs the engine benchmark matrix (parallel
# and traced at 1/2/4 cores, plus the burst axis at batch 16/32/64) and
# the BFP codec microbenchmarks, recording them to BENCH_6.json. The <5%
# tracing-overhead gate itself runs as a test (internal/benchreg).
bench:
	$(GO) run ./cmd/benchreg -o BENCH_6.json

# FUZZTIME bounds each fuzz target; the wire-format dissectors must never
# panic however mangled the frame.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDissect -fuzztime $(FUZZTIME) ./internal/fh
	$(GO) test -run '^$$' -fuzz FuzzCPlane -fuzztime $(FUZZTIME) ./internal/oran
	$(GO) test -run '^$$' -fuzz FuzzUPlane -fuzztime $(FUZZTIME) ./internal/oran
	$(GO) test -run '^$$' -fuzz FuzzBFPDecode -fuzztime $(FUZZTIME) ./internal/bfp

check: lint build race

# Stdlib-only Go repo: these targets are exactly what CI runs.

GO ?= go

.PHONY: all build vet ranvet lint test race short chaos chaos-supervise soak scale-smoke bench fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ranvet enforces the datapath invariants with the full v2 suite:
# hot-path allocations, atomic field discipline, shard safety, sim-clock
# purity, wire bounds, deterministic-path flow, state-machine transition
# tables, SPSC ring ownership, metrics-registry consistency, and stale
# suppressions. See internal/analysis and DESIGN.md §6.4 / §6.9.
ranvet:
	$(GO) run ./cmd/ranvet ./...

# lint = vet + ranvet, plus govulncheck and golangci-lint when installed
# (CI installs them; local runs skip what's missing rather than fail).
lint: vet ranvet
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick signal: unit tests only (system tests skip themselves in -short).
short:
	$(GO) test -short ./...

# Chaos smoke: the fault-injection layer's own tests plus the seeded
# chaos regressions that are cheap enough for a pre-commit loop.
chaos:
	$(GO) test ./internal/fault/ -run . -count=1
	$(GO) test ./internal/testbed/ -run 'TestChaos' -count=1
	$(GO) test ./internal/fabric/ -race -run TestPortStatsConcurrentRead -count=1

# Supervision chaos smoke: the seeded panic/stall/shed acceptance run
# (internal/fault) under the race detector, plus the supervision rows of
# the chaos experiment. Everything is sim-clocked and deterministic.
chaos-supervise:
	$(GO) test ./internal/fault/ -race -run 'TestChaosSupervisionAcceptance|TestPanicEvery|TestStall' -count=1
	$(GO) test ./internal/experiments/ -run TestSuperviseScenarios -count=1 -v

# Metro soak: the full 10k-slot chained-middlebox scenario — hundreds of
# RUs over a multi-hop fabric — asserting frame conservation at every
# hop, per-eAxC FIFO end to end, and zero goroutine leaks. Seeded and
# sim-clocked; -short (the CI unit pass) runs a 1k-slot cut.
soak:
	$(GO) test ./internal/testbed/ -run 'TestMetro' -count=1 -v

# Scale smoke: the small metro configurations and the work-stealing
# admission tests under the race detector, plus a fixed-iteration pass
# over the skewed-load scale bench (catches panics and alloc
# regressions; timing is judged only by the BENCH_8.json snapshots).
scale-smoke:
	$(GO) test ./internal/testbed/ -race -short -run 'TestMetro' -count=1
	$(GO) test ./internal/core/ -race -short -run 'TestWorkSteal|TestScalePolicy' -count=1
	$(GO) test -run '^$$' -bench EngineScale -benchtime 100x .

# Bench regression snapshot: runs the engine benchmark matrix (parallel
# and traced at 1/2/4 cores, plus the burst axis at batch 16/32/64) and
# the BFP codec microbenchmarks, recording them to BENCH_6.json; then
# the metro-scale axis (streams × shards × chain depth, plus the
# hash-vs-worksteal skew comparison) to BENCH_8.json. The <5%
# tracing-overhead gate itself runs as a test (internal/benchreg).
bench:
	$(GO) run ./cmd/benchreg -o BENCH_6.json -scale-o BENCH_8.json

# FUZZTIME bounds each fuzz target; the wire-format dissectors must never
# panic however mangled the frame.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDissect -fuzztime $(FUZZTIME) ./internal/fh
	$(GO) test -run '^$$' -fuzz FuzzCPlane -fuzztime $(FUZZTIME) ./internal/oran
	$(GO) test -run '^$$' -fuzz FuzzUPlane -fuzztime $(FUZZTIME) ./internal/oran
	$(GO) test -run '^$$' -fuzz FuzzBFPDecode -fuzztime $(FUZZTIME) ./internal/bfp

check: lint build race scale-smoke

# Stdlib-only Go repo: these targets are exactly what CI runs.

GO ?= go

.PHONY: all build vet test race short chaos bench fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick signal: unit tests only (system tests skip themselves in -short).
short:
	$(GO) test -short ./...

# Chaos smoke: the fault-injection layer's own tests plus the seeded
# chaos regressions that are cheap enough for a pre-commit loop.
chaos:
	$(GO) test ./internal/fault/ -run . -count=1
	$(GO) test ./internal/testbed/ -run 'TestChaos' -count=1
	$(GO) test ./internal/fabric/ -race -run TestPortStatsConcurrentRead -count=1

# Bench regression snapshot: runs the engine benchmark matrix (parallel
# and traced, 1/2/4 cores) and records it to BENCH_3.json. The <5%
# tracing-overhead gate itself runs as a test (internal/benchreg).
bench:
	$(GO) run ./cmd/benchreg -o BENCH_3.json

# FUZZTIME bounds each fuzz target; the wire-format dissectors must never
# panic however mangled the frame.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDissect -fuzztime $(FUZZTIME) ./internal/fh
	$(GO) test -run '^$$' -fuzz FuzzCPlane -fuzztime $(FUZZTIME) ./internal/oran
	$(GO) test -run '^$$' -fuzz FuzzUPlane -fuzztime $(FUZZTIME) ./internal/oran
	$(GO) test -run '^$$' -fuzz FuzzBFPDecode -fuzztime $(FUZZTIME) ./internal/bfp

check: vet build race

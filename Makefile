# Stdlib-only Go repo: these targets are exactly what CI runs.

GO ?= go

.PHONY: all build vet test race short chaos check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick signal: unit tests only (system tests skip themselves in -short).
short:
	$(GO) test -short ./...

# Chaos smoke: the fault-injection layer's own tests plus the seeded
# chaos regressions that are cheap enough for a pre-commit loop.
chaos:
	$(GO) test ./internal/fault/ -run . -count=1
	$(GO) test ./internal/testbed/ -run 'TestChaos' -count=1
	$(GO) test ./internal/fabric/ -race -run TestPortStatsConcurrentRead -count=1

check: vet build race
